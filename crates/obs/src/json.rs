//! Minimal std-only JSON support for the stats schema: a string escaper,
//! a small recursive-descent parser, and [`validate_stats`], which checks a
//! document against the versioned `spo-stats/1` schema.
//!
//! This is deliberately not a general-purpose JSON library — it parses
//! exactly the subset the schema needs (objects, arrays, strings, unsigned
//! and float numbers, booleans, null) and exists so the CLI and CI can
//! validate emitted stats without external dependencies.

use std::collections::BTreeMap;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Numbers keep their original unsigned-integer
/// reading when possible (the schema is overwhelmingly `u64` counts).
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that parsed exactly as an unsigned integer.
    UInt(u64),
    /// Any other number (negative, fractional, exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, keys sorted.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The unsigned integer, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` if this is any JSON number (integer or float).
    pub fn is_number(&self) -> bool {
        matches!(self, Value::UInt(_) | Value::Float(_))
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Renders the value as a single-line JSON document with no
    /// insignificant whitespace and object keys in sorted order — the
    /// deterministic form used to embed documents (e.g. a stats snapshot)
    /// inside line-delimited protocols.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Float(f) => {
                // `{}` on f64 round-trips through the parser; non-finite
                // values have no JSON spelling, so degrade them to null.
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document. Returns an error message with a byte offset on
/// malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_int = true;
        if self.peek() == Some(b'.') {
            is_int = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_int = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_int {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

fn check_counter_section(doc: &Value, section: &str) -> Result<(), String> {
    let map = doc
        .get(section)
        .ok_or_else(|| format!("missing section \"{section}\""))?
        .as_object()
        .ok_or_else(|| format!("section \"{section}\" is not an object"))?;
    for (name, v) in map {
        v.as_u64()
            .ok_or_else(|| format!("{section}.{name} is not a non-negative integer"))?;
    }
    Ok(())
}

fn check_histogram_section(doc: &Value, section: &str) -> Result<(), String> {
    let map = doc
        .get(section)
        .ok_or_else(|| format!("missing section \"{section}\""))?
        .as_object()
        .ok_or_else(|| format!("section \"{section}\" is not an object"))?;
    for (name, h) in map {
        let err = |what: &str| format!("{section}.{name}: {what}");
        let obj = h.as_object().ok_or_else(|| err("not an object"))?;
        let count = obj
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing integer \"count\""))?;
        obj.get("sum")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing integer \"sum\""))?;
        let buckets = obj
            .get("buckets")
            .and_then(Value::as_object)
            .ok_or_else(|| err("missing object \"buckets\""))?;
        let mut total = 0u64;
        for (idx, n) in buckets {
            let i: usize = idx
                .parse()
                .map_err(|_| err(&format!("bucket key \"{idx}\" is not an index")))?;
            if i >= crate::HIST_BUCKETS {
                return Err(err(&format!("bucket index {i} out of range")));
            }
            total += n
                .as_u64()
                .ok_or_else(|| err(&format!("bucket {i} count is not an integer")))?;
        }
        if total != count {
            return Err(err(&format!(
                "bucket counts sum to {total} but count is {count}"
            )));
        }
    }
    Ok(())
}

/// Validates a JSON document against the `spo-stats/1` schema:
///
/// * top level is an object with a `"schema"` field equal to
///   [`crate::SCHEMA`];
/// * sections `counters` and `work` are objects of non-negative integers;
/// * sections `histograms` and `durations` are objects of histogram
///   objects (`count`, `sum`, `buckets`), where every bucket key is an
///   index below [`crate::HIST_BUCKETS`] and the bucket counts sum to
///   `count`.
pub fn validate_stats(input: &str) -> Result<(), String> {
    let doc = parse(input)?;
    doc.as_object().ok_or("top level is not an object")?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != crate::SCHEMA {
        return Err(format!(
            "schema is \"{schema}\", expected \"{}\"",
            crate::SCHEMA
        ));
    }
    check_counter_section(&doc, "counters")?;
    check_counter_section(&doc, "work")?;
    check_histogram_section(&doc, "histograms")?;
    check_histogram_section(&doc, "durations")?;
    check_diagnostics_section(&doc)?;
    Ok(())
}

/// Validates the optional `diagnostics` section: an array of objects, each
/// carrying the five string fields of one degradation record. Documents
/// written before the section existed simply omit it.
fn check_diagnostics_section(doc: &Value) -> Result<(), String> {
    let Some(section) = doc.get("diagnostics") else {
        return Ok(());
    };
    let Value::Array(items) = section else {
        return Err("section \"diagnostics\" is not an array".to_owned());
    };
    for (i, item) in items.iter().enumerate() {
        let obj = item
            .as_object()
            .ok_or(format!("diagnostics[{i}] is not an object"))?;
        for field in ["severity", "phase", "root", "cause", "message"] {
            if !matches!(obj.get(field), Some(Value::Str(_))) {
                return Err(format!(
                    "diagnostics[{i}] is missing string field \"{field}\""
                ));
            }
        }
    }
    Ok(())
}

/// Validates a JSON document against the `spo-trace/1` schema
/// ([`crate::trace::TRACE_SCHEMA`]):
///
/// * top level is an object with a `"schema"` field equal to
///   `spo-trace/1` and a non-negative integer `"dropped"`;
/// * `"traceEvents"` is an array of Chrome Trace Event objects: each has
///   a string `"name"`, a string `"ph"` in `{X, i, C, M}`, and integer
///   `"pid"`/`"tid"`;
/// * non-metadata events carry a numeric `"ts"`; `X` events a numeric
///   `"dur"`; `i` events a string `"s"` scope; `C` events an `"args"`
///   object.
///
/// Extra top-level keys (`displayTimeUnit`, …) are permitted, matching
/// what Perfetto and `chrome://tracing` accept.
pub fn validate_trace(input: &str) -> Result<(), String> {
    let doc = parse(input)?;
    doc.as_object().ok_or("top level is not an object")?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != crate::trace::TRACE_SCHEMA {
        return Err(format!(
            "schema is \"{schema}\", expected \"{}\"",
            crate::trace::TRACE_SCHEMA
        ));
    }
    doc.get("dropped")
        .and_then(Value::as_u64)
        .ok_or("missing non-negative integer \"dropped\"")?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing field \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let err = |what: &str| format!("traceEvents[{i}]: {what}");
        let obj = ev.as_object().ok_or_else(|| err("not an object"))?;
        if !matches!(obj.get("name"), Some(Value::Str(_))) {
            return Err(err("missing string \"name\""));
        }
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing string \"ph\""))?;
        for field in ["pid", "tid"] {
            obj.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| err(&format!("missing integer \"{field}\"")))?;
        }
        match ph {
            "M" => {}
            "X" | "i" | "C" => {
                if !obj.get("ts").is_some_and(Value::is_number) {
                    return Err(err("missing numeric \"ts\""));
                }
                match ph {
                    "X" if !obj.get("dur").is_some_and(Value::is_number) => {
                        return Err(err("X event missing numeric \"dur\""));
                    }
                    "i" if !matches!(obj.get("s"), Some(Value::Str(_))) => {
                        return Err(err("i event missing string scope \"s\""));
                    }
                    "C" if obj.get("args").and_then(Value::as_object).is_none() => {
                        return Err(err("C event missing object \"args\""));
                    }
                    _ => {}
                }
            }
            other => return Err(err(&format!("unsupported phase \"{other}\""))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_basics() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n", -2.5], "c": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap(), &Value::UInt(1));
        let arr = match v.get("b").unwrap() {
            Value::Array(a) => a,
            _ => panic!("not an array"),
        };
        assert_eq!(arr[0], Value::Bool(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2], Value::Str("x\n".into()));
        assert_eq!(arr[3], Value::Float(-2.5));
        assert!(v.get("c").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escape_is_parseable() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn compact_rendering_roundtrips_and_is_deterministic() {
        let doc = r#"{"z": 1, "a": [true, null, "x\n\"y"], "m": {"k": 2.5}}"#;
        let v = parse(doc).unwrap();
        let compact = v.to_compact();
        // Single line, keys sorted, no insignificant whitespace.
        assert_eq!(compact, r#"{"a":[true,null,"x\n\"y"],"m":{"k":2.5},"z":1}"#);
        // Round-trips to the same value and the same bytes.
        let again = parse(&compact).unwrap();
        assert_eq!(again, v);
        assert_eq!(again.to_compact(), compact);
        // A full multi-line snapshot compacts to one valid line.
        let rec = crate::Recorder::new();
        rec.counter("a").add(1);
        rec.duration("d").record(100);
        let line = parse(&rec.snapshot().to_json()).unwrap().to_compact();
        assert!(!line.contains('\n'));
        validate_stats(&line).unwrap();
    }

    #[test]
    fn validate_accepts_real_snapshot() {
        let rec = crate::Recorder::new();
        rec.counter("a").add(1);
        rec.work_counter("w").add(2);
        rec.histogram("h").record(5);
        rec.duration("d").record(100);
        validate_stats(&rec.snapshot().to_json()).unwrap();
    }

    #[test]
    fn validate_rejects_bad_documents() {
        // Wrong schema version.
        let bad = r#"{"schema": "spo-stats/0", "counters": {}, "work": {},
                      "histograms": {}, "durations": {}}"#;
        assert!(validate_stats(bad).unwrap_err().contains("schema"));
        // Missing section.
        let bad = r#"{"schema": "spo-stats/1", "counters": {}, "work": {},
                      "histograms": {}}"#;
        assert!(validate_stats(bad).unwrap_err().contains("durations"));
        // Negative counter.
        let bad = r#"{"schema": "spo-stats/1", "counters": {"c": -1}, "work": {},
                      "histograms": {}, "durations": {}}"#;
        assert!(validate_stats(bad).unwrap_err().contains("non-negative"));
        // Bucket counts disagree with count.
        let bad = r#"{"schema": "spo-stats/1", "counters": {}, "work": {},
                      "histograms": {"h": {"count": 3, "sum": 9,
                                           "buckets": {"2": 1}}},
                      "durations": {}}"#;
        assert!(validate_stats(bad).unwrap_err().contains("sum to"));
        // Bucket index out of range.
        let bad = r#"{"schema": "spo-stats/1", "counters": {}, "work": {},
                      "histograms": {"h": {"count": 1, "sum": 1,
                                           "buckets": {"65": 1}}},
                      "durations": {}}"#;
        assert!(validate_stats(bad).unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_trace_rejects_bad_documents() {
        // Wrong schema version.
        let bad = r#"{"schema": "spo-trace/0", "dropped": 0, "traceEvents": []}"#;
        assert!(validate_trace(bad).unwrap_err().contains("schema"));
        // Missing traceEvents.
        let bad = r#"{"schema": "spo-trace/1", "dropped": 0}"#;
        assert!(validate_trace(bad).unwrap_err().contains("traceEvents"));
        // Unsupported phase.
        let bad = r#"{"schema": "spo-trace/1", "dropped": 0, "traceEvents":
                      [{"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("phase"));
        // Complete event without a duration.
        let bad = r#"{"schema": "spo-trace/1", "dropped": 0, "traceEvents":
                      [{"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 1.5}]}"#;
        assert!(validate_trace(bad).unwrap_err().contains("dur"));
        // Fractional timestamps are fine.
        let ok = r#"{"schema": "spo-trace/1", "dropped": 0, "traceEvents":
                     [{"name": "a", "ph": "X", "pid": 1, "tid": 1,
                       "ts": 1.5, "dur": 0.25}]}"#;
        validate_trace(ok).unwrap();
    }
}
