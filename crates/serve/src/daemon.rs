//! The daemon proper: listeners, session readers, a bounded worker pool,
//! and the graceful drain.
//!
//! # Threading model
//!
//! * The calling thread runs the accept loop (non-blocking listeners,
//!   ~20 ms poll) until a `shutdown` request or the daemon's cancel token
//!   (SIGINT/SIGTERM in the CLI) ends intake.
//! * One **reader thread per session** decodes request lines under the
//!   line-length cap and pushes jobs onto a bounded queue — a full queue
//!   blocks the reader, which is the admission backpressure.
//! * `workers` **worker threads** pop jobs, route them through the
//!   [`Registry`], and write the response under the session's writer lock,
//!   so interleaved sessions never corrupt each other's lines.
//!
//! # Admission control
//!
//! Every request gets [`GuardConfig::for_request`]: a cancel token linked
//! to the daemon's shutdown token plus the request's `timeout_ms` folded
//! into the budget deadline (tightening, never loosening, the operator's
//! base budget). An over-budget request degrades — typed response, partial
//! result — without touching any other session.
//!
//! # Drain
//!
//! A `shutdown` request answers first, then stops intake and closes the
//! queue. In-flight work gets `drain_grace` to finish naturally; past
//! that, the shutdown token cancels it (requests finish degraded). Signal
//! shutdown (SIGINT/SIGTERM) cancels in-flight work immediately, matching
//! the one-shot CLI's cancel-and-report contract.

use crate::proto::{self, ErrorKind, JsonObj, Method, Request, RequestError, RequestId};
use crate::registry::Registry;
use spo_cache::PolicyCache;
use spo_chaos::{sites, FaultPlan};
use spo_guard::{Diagnostic, GuardConfig};
use spo_obs::json;
use spo_obs::trace::{self, TraceLane, Tracer};
use spo_obs::{Histogram, Recorder};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration for [`run`].
#[derive(Debug)]
pub struct ServeConfig {
    /// Unix socket path to listen on.
    pub socket: Option<PathBuf>,
    /// TCP address (`host:port`) to additionally listen on.
    pub tcp: Option<String>,
    /// Request worker threads (0 = 2).
    pub workers: usize,
    /// Engine worker threads per analysis (0 = all CPUs).
    pub jobs: usize,
    /// Persistent summary cache directory; `None` = a private temp
    /// directory, removed on drain.
    pub cache_dir: Option<PathBuf>,
    /// Disable the persistent cache entirely.
    pub no_cache: bool,
    /// Request-line length cap in bytes (0 = 1 MiB).
    pub max_line_bytes: usize,
    /// How long a drain waits for in-flight work before cancelling it.
    pub drain_grace: Duration,
    /// Per-session write deadline: a response write that blocks longer
    /// than this sheds the session (slow-client shedding) instead of
    /// parking a worker forever. `None` disables the deadline.
    pub write_timeout: Option<Duration>,
    /// Deadline applied to requests that carry no `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Base admission config. Its cancel token becomes the parent of the
    /// daemon's shutdown token, so the CLI's signal token drains the
    /// daemon; its budgets are per-request floors every request inherits.
    pub guard: GuardConfig,
    /// Stats recorder. A disabled recorder is upgraded to a live one —
    /// the `stats` method needs somewhere to read from.
    pub recorder: Recorder,
    /// Programs to load before accepting connections.
    pub preload: Vec<(String, Vec<String>)>,
    /// Compiled policy indexes (`.spi`) to warm-load before accepting
    /// connections, as `(name, path)`. A loadable index answers `query`
    /// and `diff` without analysis; one that fails to load logs a
    /// diagnostic and the daemon falls back to full analysis for that
    /// name — degraded, never silently wrong.
    pub preload_index: Vec<(String, PathBuf)>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            socket: None,
            tcp: None,
            workers: 0,
            jobs: 0,
            cache_dir: None,
            no_cache: false,
            max_line_bytes: 0,
            drain_grace: Duration::from_secs(10),
            write_timeout: Some(Duration::from_secs(30)),
            default_timeout: None,
            guard: GuardConfig::default(),
            recorder: Recorder::disabled(),
            preload: Vec::new(),
            preload_index: Vec::new(),
        }
    }
}

/// What a finished daemon reports.
#[derive(Debug)]
pub struct DrainReport {
    /// `true` when every in-flight request finished within the grace
    /// window without being cancelled by the drain itself.
    pub graceful: bool,
    /// Total requests served.
    pub requests: u64,
    /// Total sessions accepted.
    pub sessions: u64,
    /// Wall-clock spent draining.
    pub drained_in: Duration,
}

/// One session's write half plus the handle that tears the whole stream
/// down — slow-client shedding and the chaos connection-drop site both
/// need to kill the connection from under a blocked peer, which a plain
/// `Write` cannot do.
struct SessionOut {
    w: Box<dyn Write + Send>,
    /// Shuts down both stream halves; callable more than once.
    close: Arc<dyn Fn() + Send + Sync>,
}

impl SessionOut {
    /// A writer with a no-op closer (tests and in-memory sinks).
    #[cfg(test)]
    fn sink(w: Box<dyn Write + Send>) -> SessionOut {
        SessionOut {
            w,
            close: Arc::new(|| {}),
        }
    }
}

type SessionWriter = Arc<Mutex<SessionOut>>;

/// Unpoisons a lock result: daemon state must stay usable after a
/// panicked holder (the panic itself is already quarantined or fatal).
fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Job {
    line: String,
    out: SessionWriter,
    /// When the session reader enqueued the line; traced requests turn
    /// this into a `queue.wait` event, so admission latency is visible on
    /// the timeline next to the compute it delayed.
    queued_at: Instant,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
    closed: bool,
}

/// A bounded MPMC job queue. `push` blocks when full (admission
/// backpressure on the session reader) and fails once closed; `pop`
/// drains remaining jobs after close, then returns `None`.
struct JobQueue {
    state: Mutex<QueueState>,
    space: Condvar,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState::default()),
            space: Condvar::new(),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn push(&self, job: Job) -> bool {
        let mut st = unpoison(self.state.lock());
        loop {
            if st.closed {
                return false;
            }
            if st.jobs.len() < self.capacity {
                st.jobs.push_back(job);
                self.ready.notify_one();
                return true;
            }
            st = unpoison(self.space.wait(st));
        }
    }

    fn pop(&self) -> Option<Job> {
        let mut st = unpoison(self.state.lock());
        loop {
            if let Some(job) = st.jobs.pop_front() {
                st.in_flight += 1;
                self.space.notify_all();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = unpoison(self.ready.wait(st));
        }
    }

    fn done(&self) {
        let mut st = unpoison(self.state.lock());
        st.in_flight -= 1;
        // Wakes both blocked pushers and the drain's idle waiter.
        self.space.notify_all();
    }

    fn close(&self) {
        let mut st = unpoison(self.state.lock());
        st.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Currently queued (not yet popped) jobs — the `stats` queue-depth
    /// gauge and the per-trace dequeue counter.
    fn depth(&self) -> usize {
        unpoison(self.state.lock()).jobs.len()
    }

    /// Waits until no job is queued or in flight, up to `grace`.
    fn wait_idle(&self, grace: Duration) -> bool {
        let deadline = Instant::now() + grace;
        let mut st = unpoison(self.state.lock());
        loop {
            if st.jobs.is_empty() && st.in_flight == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = unpoison(self.space.wait_timeout(st, deadline - now));
            st = guard;
        }
    }
}

/// How many finished request traces the daemon keeps for the `trace`
/// method. Oldest captures fall off first.
const TRACE_RING: usize = 64;

/// Rolling per-method telemetry behind the `stats` response: a request
/// counter plus an always-on latency histogram (p50/p99 come from its
/// log₂ buckets). Purely wall-clock — lives beside, never inside, the
/// deterministic report state.
struct MethodStat {
    count: u64,
    latency: Histogram,
}

/// A compiled policy index warm-loaded at startup: the reconstructed
/// libraries plus pre-rendered listings, so an index-served `query` is a
/// map lookup + `render_entry` and a `diff` never re-analyzes. The
/// options tokens gate serving: a request whose options don't match what
/// the index was compiled under falls through to full analysis.
struct WarmIndex {
    /// Token of the options the index was built under (serves the full
    /// interprocedural policies).
    token_full: String,
    /// Token of the intraprocedural ablation of those options (the index
    /// carries the ablation too, so `--intra-only` queries are warm).
    token_intra: String,
    full: spo_core::LibraryPolicies,
    intra: spo_core::LibraryPolicies,
    report_full: String,
    report_intra: String,
}

fn load_warm_index(name: &str, path: &Path) -> Result<WarmIndex, String> {
    let bytes = spo_index::read_index_file(path).map_err(|e| e.to_string())?;
    let index = spo_index::PolicyIndex::parse(&bytes)?;
    let (mut full, mut intra) = index.to_libraries()?;
    // Serve under the daemon's name for this library, whatever name the
    // exporter used — report headers must match the analysis path's.
    full.name = name.to_owned();
    intra.name = name.to_owned();
    let token_full = index.options_token().to_owned();
    Ok(WarmIndex {
        token_intra: token_full.replace("interprocedural=true", "interprocedural=false"),
        token_full,
        report_full: spo_core::render_analysis(&full),
        report_intra: spo_core::render_analysis(&intra),
        full,
        intra,
    })
}

struct Shared {
    registry: Registry,
    /// Warm indexes by program name; immutable after startup.
    indexes: BTreeMap<String, WarmIndex>,
    guard: GuardConfig,
    default_timeout: Option<Duration>,
    queue: JobQueue,
    recorder: Recorder,
    drain: AtomicBool,
    max_line: usize,
    requests: AtomicU64,
    warm_hits: AtomicU64,
    sessions_open: AtomicU64,
    sessions_total: AtomicU64,
    started: Instant,
    methods: Mutex<BTreeMap<String, MethodStat>>,
    traces: Mutex<VecDeque<(String, String)>>,
    /// Captured from the process-wide spo-chaos plan at startup; session
    /// IO fault sites draw from it. Disabled costs one branch per probe.
    chaos: FaultPlan,
}

/// Writes one framed response line under the session's writer lock.
/// Chaos sites perturb the frame (drop mid-response, stall, split); a
/// write that hits the per-session deadline sheds the slow client by
/// tearing the stream down rather than parking the worker.
fn write_line(shared: &Shared, out: &SessionWriter, line: &str) -> bool {
    let mut o = unpoison(out.lock());
    if shared.chaos.should_fire(sites::SERVE_CONN_DROP) {
        // Half the frame, then a hard shutdown: the client observes a
        // mid-response EOF, exactly what a crashed daemon looks like.
        shared.recorder.work_counter("chaos.injected").incr();
        shared
            .recorder
            .work_counter(&format!("chaos.{}", sites::SERVE_CONN_DROP))
            .incr();
        let _ = o.w.write_all(&line.as_bytes()[..line.len() / 2]);
        let _ = o.w.flush();
        (o.close)();
        return false;
    }
    if shared.chaos.should_fire(sites::SERVE_WRITE_STALL) {
        shared.recorder.work_counter("chaos.injected").incr();
        std::thread::sleep(Duration::from_millis(
            1 + shared.chaos.amount(sites::SERVE_WRITE_STALL, 25),
        ));
    }
    let result = if shared.chaos.should_fire(sites::SERVE_FRAME_SPLIT) && line.len() >= 2 {
        // Two separately flushed chunks: readers must assemble on the
        // newline, never on the read boundary.
        shared.recorder.work_counter("chaos.injected").incr();
        let cut = line.len() / 2;
        o.w.write_all(&line.as_bytes()[..cut])
            .and_then(|()| o.w.flush())
            .and_then(|()| o.w.write_all(&line.as_bytes()[cut..]))
            .and_then(|()| o.w.write_all(b"\n"))
            .and_then(|()| o.w.flush())
    } else {
        o.w.write_all(line.as_bytes())
            .and_then(|()| o.w.write_all(b"\n"))
            .and_then(|()| o.w.flush())
    };
    match result {
        Ok(()) => true,
        Err(e) => {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                // The peer stopped reading past the write deadline: shed
                // the session so the worker pool stays available.
                shared.recorder.work_counter("serve.shed").incr();
                (o.close)();
            }
            false
        }
    }
}

enum LineRead {
    Eof,
    Line(String),
    Oversized,
}

/// Reads one `\n`-terminated line of at most `max` bytes. An over-long
/// line is consumed through its newline and reported as [`LineRead::
/// Oversized`], so the session survives with its framing intact.
fn read_line_capped(r: &mut BufReader<Box<dyn Read + Send>>, max: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + pos > max {
                r.consume(pos + 1);
                return Ok(LineRead::Oversized);
            }
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
        let n = chunk.len();
        if buf.len() + n > max {
            r.consume(n);
            skip_to_newline(r)?;
            return Ok(LineRead::Oversized);
        }
        buf.extend_from_slice(chunk);
        r.consume(n);
    }
}

fn skip_to_newline(r: &mut BufReader<Box<dyn Read + Send>>) -> io::Result<()> {
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(());
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            r.consume(pos + 1);
            return Ok(());
        }
        let n = chunk.len();
        r.consume(n);
    }
}

fn session_reader(shared: Arc<Shared>, stream: Box<dyn Read + Send>, out: SessionWriter) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_line_capped(&mut reader, shared.max_line) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::Oversized) => {
                shared.recorder.work_counter("serve.errors").incr();
                let err = RequestError::new(
                    ErrorKind::Oversized,
                    format!("request line exceeds {} bytes", shared.max_line),
                );
                if !write_line(
                    &shared,
                    &out,
                    &proto::render_error(&RequestId::none(), &err),
                ) {
                    break;
                }
            }
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if shared.chaos.should_fire(sites::SERVE_READ_STALL) {
                    shared.recorder.work_counter("chaos.injected").incr();
                    std::thread::sleep(Duration::from_millis(
                        1 + shared.chaos.amount(sites::SERVE_READ_STALL, 25),
                    ));
                }
                let job = Job {
                    line,
                    out: Arc::clone(&out),
                    queued_at: Instant::now(),
                };
                if !shared.queue.push(job) {
                    let err = RequestError::new(ErrorKind::ShuttingDown, "daemon is draining");
                    write_line(
                        &shared,
                        &out,
                        &proto::render_error(&RequestId::none(), &err),
                    );
                    break;
                }
            }
        }
    }
    shared.sessions_open.fetch_sub(1, Ordering::Relaxed);
}

fn worker(shared: Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let t0 = Instant::now();
        let (response, label, is_shutdown) = route(&shared, &job.line, job.queued_at);
        write_line(&shared, &job.out, &response);
        let nanos = t0.elapsed().as_nanos() as u64;
        shared.recorder.duration("serve.request").record(nanos);
        shared
            .recorder
            .duration(&format!("serve.request.{label}"))
            .record(nanos);
        {
            let mut methods = unpoison(shared.methods.lock());
            let stat = methods
                .entry(label.to_owned())
                .or_insert_with(|| MethodStat {
                    count: 0,
                    latency: Histogram::standalone(),
                });
            stat.count += 1;
            stat.latency.record(nanos);
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        shared.recorder.work_counter("serve.requests").incr();
        shared
            .recorder
            .work_counter(&format!("serve.requests.{label}"))
            .incr();
        if is_shutdown {
            shared.drain.store(true, Ordering::SeqCst);
        }
        shared.queue.done();
    }
}

enum Rendered {
    Ok(String),
    Degraded(String, Vec<Diagnostic>),
}

fn route(shared: &Shared, line: &str, queued_at: Instant) -> (String, &'static str, bool) {
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err((id, e)) => {
            shared.recorder.work_counter("serve.errors").incr();
            return (proto::render_error(&id, &e), "invalid", false);
        }
    };
    let label = req.method.label();
    let is_shutdown = matches!(req.method, Method::Shutdown);
    let guard = shared
        .guard
        .for_request(req.timeout.or(shared.default_timeout));
    let id = req.id.clone();
    let trace_id = req.trace_id.clone();
    // A client-supplied trace_id turns the flight recorder on for exactly
    // this request; untraced requests keep the disabled-tracer fast path
    // and byte-identical responses.
    let tracer = if trace_id.is_some() {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    let outcome = {
        let lane = if tracer.is_enabled() {
            tracer.lane("rpc/request")
        } else {
            TraceLane::disabled()
        };
        let _bound = tracer.is_enabled().then(|| trace::bind(&lane));
        lane.complete_since(queued_at, "queue.wait", "serve");
        lane.counter("queue.depth", "serve", shared.queue.depth() as u64);
        let _span = lane.span(label, "rpc");
        dispatch(shared, req, &guard, &tracer)
    };
    if let Some(tid) = &trace_id {
        // The file-oriented rendering is one event per line; collapse it
        // so the capture can embed in a single line-delimited response.
        // Real newlines only ever separate events (escape() encodes any
        // inside names), so this cannot corrupt the document.
        let doc = tracer.to_chrome_json().replace('\n', "");
        let mut ring = unpoison(shared.traces.lock());
        if ring.len() >= TRACE_RING {
            ring.pop_front();
        }
        ring.push_back((tid.clone(), doc));
    }
    let response = match outcome {
        Ok(Rendered::Ok(result)) => proto::render_ok(&id, trace_id.as_deref(), &result),
        Ok(Rendered::Degraded(result, diags)) => {
            proto::render_degraded(&id, trace_id.as_deref(), &result, &diags)
        }
        Err(e) => {
            shared.recorder.work_counter("serve.errors").incr();
            proto::render_error(&id, &e)
        }
    };
    (response, label, is_shutdown)
}

fn note_warm(shared: &Shared, warm: bool) {
    if warm {
        shared.warm_hits.fetch_add(1, Ordering::Relaxed);
        shared.recorder.work_counter("serve.warm_hits").incr();
    }
}

fn dispatch(
    shared: &Shared,
    req: Request,
    guard: &GuardConfig,
    tracer: &Tracer,
) -> Result<Rendered, RequestError> {
    match req.method {
        Method::Load { name, paths } => {
            let summary = shared.registry.load(&name, &paths)?;
            let result = JsonObj::new()
                .str("name", &name)
                .u64("classes", summary.classes as u64)
                .u64("entry_points", summary.entry_points as u64)
                .u64("warnings", summary.warnings.len() as u64)
                .bool("replaced", summary.replaced)
                .finish();
            Ok(if summary.warnings.is_empty() {
                Rendered::Ok(result)
            } else {
                Rendered::Degraded(result, summary.warnings)
            })
        }
        Method::Analyze { name, options } => {
            let entry = shared.registry.get(&name)?;
            let (a, warm) = shared
                .registry
                .analysis_traced(&entry, options, guard, tracer);
            note_warm(shared, warm);
            let result = JsonObj::new()
                .str("name", &name)
                .str("report", &a.report)
                .u64("exit_code", u64::from(a.exit_code))
                .finish();
            Ok(if a.diagnostics.is_empty() {
                Rendered::Ok(result)
            } else {
                Rendered::Degraded(result, a.diagnostics.clone())
            })
        }
        Method::Query {
            name,
            entry,
            options,
        } => {
            // Warm-index fast path: serve from the compiled index when
            // one is loaded under this name and was built under exactly
            // the requested options (or their intra ablation). Reports
            // are byte-identical to the analysis path — both render via
            // render_entry/render_analysis — and a missing entry point
            // raises the same typed NotFound the analysis path does.
            if let Some(w) = shared.indexes.get(&name) {
                let want = spo_index::options_token(&options.to_options());
                let served = if want == w.token_full {
                    Some((&w.full, &w.report_full))
                } else if want == w.token_intra {
                    Some((&w.intra, &w.report_intra))
                } else {
                    None
                };
                if let Some((lib, listing)) = served {
                    note_warm(shared, true);
                    let report = match &entry {
                        None => listing.clone(),
                        Some(sig) => {
                            let ep = lib.entries.get(sig).ok_or_else(|| {
                                RequestError::new(
                                    ErrorKind::NotFound,
                                    format!("no entry point \"{sig}\" in \"{name}\""),
                                )
                            })?;
                            spo_core::render_entry(sig, ep)
                        }
                    };
                    let mut obj = JsonObj::new().str("name", &name);
                    if let Some(sig) = &entry {
                        obj = obj.str("entry", sig);
                    }
                    let result = obj.str("report", &report).u64("exit_code", 0).finish();
                    return Ok(Rendered::Ok(result));
                }
                // Options the index wasn't compiled under: fall through
                // to full analysis (correct, just not warm).
                shared.recorder.work_counter("index.fallback").incr();
            }
            let prog = shared.registry.get(&name)?;
            let (a, warm) = shared
                .registry
                .analysis_traced(&prog, options, guard, tracer);
            note_warm(shared, warm);
            let report = match &entry {
                None => a.report.clone(),
                Some(sig) => {
                    let ep = a.lib.entries.get(sig).ok_or_else(|| {
                        RequestError::new(
                            ErrorKind::NotFound,
                            format!("no entry point \"{sig}\" in \"{name}\""),
                        )
                    })?;
                    spo_core::render_entry(sig, ep)
                }
            };
            let mut obj = JsonObj::new().str("name", &name);
            if let Some(sig) = &entry {
                obj = obj.str("entry", sig);
            }
            let result = obj
                .str("report", &report)
                .u64("exit_code", u64::from(a.exit_code))
                .finish();
            Ok(if a.diagnostics.is_empty() {
                Rendered::Ok(result)
            } else {
                Rendered::Degraded(result, a.diagnostics.clone())
            })
        }
        Method::Diff {
            left,
            right,
            options,
        } => {
            // Warm-index fast path: when both sides have indexes compiled
            // under the requested options, compose the exact analysis-path
            // diff (full diff + intra-ablation root-cause classification)
            // from the reconstructed libraries — no analysis, same bytes,
            // same findings bit and exit code.
            if let (Some(lw), Some(rw)) = (shared.indexes.get(&left), shared.indexes.get(&right)) {
                let want = spo_index::options_token(&options.to_options());
                if want == lw.token_full && want == rw.token_full {
                    note_warm(shared, true);
                    let (report, findings) =
                        spo_index::diff_rendered(&lw.full, &lw.intra, &rw.full, &rw.intra);
                    let result = JsonObj::new()
                        .str("left", &left)
                        .str("right", &right)
                        .str("report", &report)
                        .bool("findings", findings)
                        .u64("exit_code", u64::from(findings))
                        .finish();
                    return Ok(Rendered::Ok(result));
                }
                shared.recorder.work_counter("index.fallback").incr();
            }
            let l = shared.registry.get(&left)?;
            let r = shared.registry.get(&right)?;
            let (d, warm) = shared.registry.diff_traced(&l, &r, options, guard, tracer);
            note_warm(shared, warm);
            let result = JsonObj::new()
                .str("left", &left)
                .str("right", &right)
                .str("report", &d.report)
                .bool("findings", d.findings)
                .u64("exit_code", u64::from(d.exit_code))
                .finish();
            Ok(if d.diagnostics.is_empty() {
                Rendered::Ok(result)
            } else {
                Rendered::Degraded(result, d.diagnostics)
            })
        }
        Method::Stats => {
            let snapshot = shared.recorder.snapshot().to_json();
            let compact = json::parse(&snapshot)
                .map(|v| v.to_compact())
                .unwrap_or_else(|_| "null".to_owned());
            // Per-method rolling telemetry: request count plus latency
            // p50/p99 in microseconds, keyed and emitted in sorted method
            // order so the field order stays fixed.
            let mut methods = String::from("{");
            for (i, (name, stat)) in unpoison(shared.methods.lock()).iter().enumerate() {
                if i > 0 {
                    methods.push(',');
                }
                let snap = stat.latency.snapshot();
                let row = JsonObj::new()
                    .u64("count", stat.count)
                    .u64("p50_us", snap.quantile(0.5) / 1_000)
                    .u64("p99_us", snap.quantile(0.99) / 1_000)
                    .finish();
                methods.push_str(&format!("\"{name}\":{row}"));
            }
            methods.push('}');
            let result = JsonObj::new()
                .u64("programs", shared.registry.names().len() as u64)
                .u64(
                    "sessions_open",
                    shared.sessions_open.load(Ordering::Relaxed),
                )
                .u64(
                    "sessions_total",
                    shared.sessions_total.load(Ordering::Relaxed),
                )
                .u64("requests", shared.requests.load(Ordering::Relaxed))
                .u64("warm_hits", shared.warm_hits.load(Ordering::Relaxed))
                .u64("uptime_secs", shared.started.elapsed().as_secs())
                .u64("queue_depth", shared.queue.depth() as u64)
                .raw("methods", &methods)
                .raw("stats", &compact)
                .finish();
            Ok(Rendered::Ok(result))
        }
        Method::Trace { id } => {
            let ring = unpoison(shared.traces.lock());
            let found = match &id {
                Some(wanted) => ring.iter().rev().find(|(tid, _)| tid == wanted),
                None => ring.back(),
            };
            let (tid, doc) = found.ok_or_else(|| {
                RequestError::new(
                    ErrorKind::NotFound,
                    match &id {
                        Some(wanted) => format!("no recorded trace \"{wanted}\""),
                        None => "no request traces recorded yet".to_owned(),
                    },
                )
            })?;
            let result = JsonObj::new()
                .str("trace_id", tid)
                .raw("trace", doc)
                .finish();
            Ok(Rendered::Ok(result))
        }
        Method::Reload { name } => {
            let summary = shared.registry.reload(&name, guard)?;
            let mut rows = String::from("[");
            for (i, (key, hits, misses)) in summary.reanalyzed.iter().enumerate() {
                if i > 0 {
                    rows.push(',');
                }
                rows.push_str(
                    &JsonObj::new()
                        .str("options", key)
                        .u64("cache_hits", *hits)
                        .u64("cache_misses", *misses)
                        .finish(),
                );
            }
            rows.push(']');
            let result = JsonObj::new()
                .str("name", &name)
                .u64("classes", summary.load.classes as u64)
                .u64("entry_points", summary.load.entry_points as u64)
                .u64("warnings", summary.load.warnings.len() as u64)
                .raw("reanalyzed", &rows)
                .finish();
            Ok(if summary.load.warnings.is_empty() {
                Rendered::Ok(result)
            } else {
                Rendered::Degraded(result, summary.load.warnings)
            })
        }
        Method::Shutdown => Ok(Rendered::Ok(JsonObj::new().bool("draining", true).finish())),
    }
}

/// Runs the daemon until a `shutdown` request or cancellation of the
/// configured guard token (the CLI wires SIGINT/SIGTERM to it), then
/// drains and reports. Blocks the calling thread for the daemon's whole
/// lifetime.
pub fn run(config: ServeConfig) -> Result<DrainReport, String> {
    if config.socket.is_none() && config.tcp.is_none() {
        return Err("serve: need a Unix socket path or a TCP address to listen on".to_owned());
    }
    let recorder = if config.recorder.is_enabled() {
        config.recorder.clone()
    } else {
        Recorder::new()
    };
    let (cache, temp_cache_dir) = open_cache(&config)?;
    // The daemon's shutdown token: a child of the caller's token so the
    // process signal token still drains us, while our own forced-drain
    // cancel never leaks back to the caller.
    let shutdown = config.guard.cancel.child();
    let mut base_guard = config.guard.clone();
    base_guard.cancel = shutdown.clone();
    let workers_n = if config.workers == 0 {
        2
    } else {
        config.workers
    };
    // Warm indexes load before the listeners exist. A failed load is a
    // stderr diagnostic plus analysis fallback for that name — a corrupt
    // or stale index file must never take the daemon down or serve a
    // wrong answer.
    let mut indexes = BTreeMap::new();
    for (name, path) in &config.preload_index {
        match load_warm_index(name, path) {
            Ok(w) => {
                eprintln!(
                    "spo serve: index \"{name}\" warm from {} ({} entry points)",
                    path.display(),
                    w.full.entries.len()
                );
                indexes.insert(name.clone(), w);
            }
            Err(e) => {
                eprintln!(
                    "spo serve: --index {name}: {e}; falling back to full analysis for \"{name}\""
                );
                recorder.work_counter("index.load_failed").incr();
            }
        }
    }
    let shared = Arc::new(Shared {
        registry: Registry::new(config.jobs, cache, recorder.clone()),
        indexes,
        guard: base_guard,
        default_timeout: config.default_timeout,
        queue: JobQueue::new(workers_n * 4),
        recorder: recorder.clone(),
        drain: AtomicBool::new(false),
        max_line: if config.max_line_bytes == 0 {
            1 << 20
        } else {
            config.max_line_bytes
        },
        requests: AtomicU64::new(0),
        warm_hits: AtomicU64::new(0),
        sessions_open: AtomicU64::new(0),
        sessions_total: AtomicU64::new(0),
        started: Instant::now(),
        methods: Mutex::new(BTreeMap::new()),
        traces: Mutex::new(VecDeque::new()),
        chaos: spo_chaos::current(),
    });
    for (name, paths) in &config.preload {
        shared
            .registry
            .load(name, paths)
            .map_err(|e| format!("--load {name}: {}", e.message))?;
    }
    let unix = match &config.socket {
        None => None,
        Some(path) => {
            if path.exists() {
                if UnixStream::connect(path).is_ok() {
                    return Err(format!(
                        "{}: a daemon is already serving on this socket",
                        path.display()
                    ));
                }
                // Nobody answers: a previous daemon died without
                // unlinking its socket. Take the address over.
                eprintln!("spo serve: taking over stale socket {}", path.display());
                let _ = std::fs::remove_file(path);
            }
            let listener =
                UnixListener::bind(path).map_err(|e| format!("{}: {e}", path.display()))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            Some(listener)
        }
    };
    let tcp = match &config.tcp {
        None => None,
        Some(addr) => {
            let listener = TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("{addr}: {e}"))?;
            Some(listener)
        }
    };

    let mut worker_handles = Vec::new();
    for _ in 0..workers_n {
        let sh = Arc::clone(&shared);
        worker_handles.push(std::thread::spawn(move || worker(sh)));
    }
    let mut reader_handles = Vec::new();
    let mut closers: Vec<Arc<dyn Fn() + Send + Sync>> = Vec::new();

    if let Some(path) = &config.socket {
        eprintln!("spo serve: listening on {}", path.display());
    }
    if let (Some(listener), Some(addr)) = (&tcp, &config.tcp) {
        let _ = listener;
        eprintln!("spo serve: listening on tcp {addr}");
    }

    while !shutdown.is_cancelled() && !shared.drain.load(Ordering::SeqCst) {
        let mut accepted = false;
        if let Some(listener) = &unix {
            if let Ok((stream, _)) = listener.accept() {
                accepted = true;
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(config.write_timeout);
                if let (Ok(writer), Ok(closer)) = (stream.try_clone(), stream.try_clone()) {
                    start_session(
                        &shared,
                        &mut reader_handles,
                        &mut closers,
                        Box::new(stream),
                        Box::new(writer),
                        Arc::new(move || {
                            let _ = closer.shutdown(Shutdown::Both);
                        }),
                    );
                }
            }
        }
        if let Some(listener) = &tcp {
            if let Ok((stream, _)) = listener.accept() {
                accepted = true;
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_write_timeout(config.write_timeout);
                if let (Ok(writer), Ok(closer)) = (stream.try_clone(), stream.try_clone()) {
                    start_session(
                        &shared,
                        &mut reader_handles,
                        &mut closers,
                        Box::new(stream),
                        Box::new(writer),
                        Arc::new(move || {
                            let _ = closer.shutdown(Shutdown::Both);
                        }),
                    );
                }
            }
        }
        if !accepted {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // Drain. Stop intake first: listeners go away, the queue closes (late
    // lines get a typed shutting-down error).
    let t_drain = Instant::now();
    let signalled = shutdown.is_cancelled();
    drop(unix);
    if let Some(path) = &config.socket {
        let _ = std::fs::remove_file(path);
    }
    drop(tcp);
    shared.queue.close();
    // Phase one: let in-flight work finish naturally (a signal shutdown
    // already cancelled it, so "naturally" means degraded-but-fast).
    let mut graceful = shared.queue.wait_idle(config.drain_grace);
    if !graceful {
        // Phase two: cancel stragglers; they complete degraded.
        shutdown.cancel();
        let _ = shared.queue.wait_idle(config.drain_grace);
    }
    graceful = graceful && !signalled;
    for close in closers {
        close();
    }
    for handle in worker_handles {
        let _ = handle.join();
    }
    for handle in reader_handles {
        let _ = handle.join();
    }
    if let Some(cache) = shared.registry.cache() {
        cache.flush();
    }
    let report = DrainReport {
        graceful,
        requests: shared.requests.load(Ordering::Relaxed),
        sessions: shared.sessions_total.load(Ordering::Relaxed),
        drained_in: t_drain.elapsed(),
    };
    drop(shared);
    if let Some(dir) = temp_cache_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(report)
}

fn open_cache(config: &ServeConfig) -> Result<(Option<Arc<PolicyCache>>, Option<PathBuf>), String> {
    if config.no_cache {
        return Ok((None, None));
    }
    match &config.cache_dir {
        Some(dir) => {
            let cache = PolicyCache::open(dir.clone())
                .map_err(|e| format!("--cache-dir {}: {e}", dir.display()))?;
            Ok((Some(Arc::new(cache)), None))
        }
        None => {
            // Warm starts within this daemon's lifetime still matter even
            // without a user-chosen cache directory: reload's cone-based
            // invalidation runs through this private cache.
            let dir = std::env::temp_dir().join(format!("spo-serve-cache-{}", std::process::id()));
            let cache =
                PolicyCache::open(dir.clone()).map_err(|e| format!("{}: {e}", dir.display()))?;
            Ok((Some(Arc::new(cache)), Some(dir)))
        }
    }
}

fn start_session(
    shared: &Arc<Shared>,
    handles: &mut Vec<std::thread::JoinHandle<()>>,
    closers: &mut Vec<Arc<dyn Fn() + Send + Sync>>,
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    closer: Arc<dyn Fn() + Send + Sync>,
) {
    shared.sessions_total.fetch_add(1, Ordering::Relaxed);
    shared.sessions_open.fetch_add(1, Ordering::Relaxed);
    shared.recorder.work_counter("serve.sessions").incr();
    closers.push(Arc::clone(&closer));
    let out: SessionWriter = Arc::new(Mutex::new(SessionOut {
        w: writer,
        close: closer,
    }));
    let sh = Arc::clone(shared);
    handles.push(std::thread::spawn(move || session_reader(sh, reader, out)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::OptionsSpec;
    use spo_obs::json::Value;

    #[test]
    fn queue_applies_backpressure_and_drains_after_close() {
        let q = JobQueue::new(1);
        let out: SessionWriter = Arc::new(Mutex::new(SessionOut::sink(Box::new(Vec::new()))));
        assert!(q.push(Job {
            line: "a".to_owned(),
            out: Arc::clone(&out),
            queued_at: Instant::now(),
        }));
        assert_eq!(q.depth(), 1);
        let job = q.pop().unwrap();
        assert_eq!(job.line, "a");
        assert_eq!(q.depth(), 0);
        q.close();
        assert!(!q.push(Job {
            line: "b".to_owned(),
            out,
            queued_at: Instant::now(),
        }));
        assert!(
            !q.wait_idle(Duration::from_millis(10)),
            "job still in flight"
        );
        q.done();
        assert!(q.wait_idle(Duration::from_millis(10)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn oversized_lines_recover_at_the_next_newline() {
        let long = format!("{}\n{{\"ok\":1}}\n", "x".repeat(64));
        let mut reader: BufReader<Box<dyn Read + Send>> =
            BufReader::new(Box::new(io::Cursor::new(long.into_bytes())));
        assert!(matches!(
            read_line_capped(&mut reader, 16).unwrap(),
            LineRead::Oversized
        ));
        match read_line_capped(&mut reader, 16).unwrap() {
            LineRead::Line(line) => assert_eq!(line, "{\"ok\":1}"),
            other => panic!(
                "expected the next line to survive, got {:?}",
                std::mem::discriminant(&other)
            ),
        }
        assert!(matches!(
            read_line_capped(&mut reader, 16).unwrap(),
            LineRead::Eof
        ));
    }

    const FIXTURE: &str = r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
class t.A {
  method public void read() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("f");
    return;
  }
}
"#;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spo-serve-daemon-{}-{tag}", std::process::id()))
    }

    #[test]
    fn daemon_serves_load_query_stats_and_drains_on_shutdown() {
        let jir = temp_path("fixture.jir");
        std::fs::write(&jir, FIXTURE).unwrap();
        let socket = temp_path("sock");
        let _ = std::fs::remove_file(&socket);
        let config = ServeConfig {
            socket: Some(socket.clone()),
            no_cache: true,
            ..ServeConfig::default()
        };
        let daemon = std::thread::spawn(move || run(config));
        while !socket.exists() {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stream = UnixStream::connect(&socket).unwrap();
        let mut reader = io::BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        let mut rpc = |line: &str| {
            writeln!(stream, "{line}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            spo_obs::json::parse(response.trim_end()).unwrap()
        };
        let jir_str = jir.to_string_lossy().into_owned();
        let loaded = rpc(&format!(
            r#"{{"spo-rpc":1,"id":1,"method":"load","params":{{"name":"lib","paths":["{jir_str}"]}}}}"#
        ));
        assert_eq!(loaded.get("status").and_then(Value::as_str), Some("ok"));
        let q1 = rpc(r#"{"spo-rpc":1,"id":2,"method":"query","params":{"name":"lib"}}"#);
        let q2 = rpc(r#"{"spo-rpc":1,"id":3,"method":"query","params":{"name":"lib"}}"#);
        let report = |v: &Value| {
            v.get("result")
                .and_then(|r| r.get("report"))
                .and_then(Value::as_str)
                .map(str::to_owned)
                .unwrap()
        };
        assert_eq!(report(&q1), report(&q2), "warm repeat is byte-identical");
        assert!(report(&q1).contains("checkRead"));
        let garbage = rpc("this is not json");
        assert_eq!(garbage.get("status").and_then(Value::as_str), Some("error"));
        // A traced request echoes its trace_id and leaves a retrievable
        // spo-trace/1 capture behind, without perturbing the report bytes.
        let traced = rpc(
            r#"{"spo-rpc":1,"id":4,"method":"query","params":{"name":"lib","broad":true},"trace_id":"req-t1"}"#,
        );
        assert_eq!(
            traced.get("trace_id").and_then(Value::as_str),
            Some("req-t1")
        );
        assert_eq!(traced.get("status").and_then(Value::as_str), Some("ok"));
        let fetched =
            rpc(r#"{"spo-rpc":1,"id":5,"method":"trace","params":{"trace_id":"req-t1"}}"#);
        assert_eq!(fetched.get("status").and_then(Value::as_str), Some("ok"));
        let capture = fetched.get("result").unwrap();
        assert_eq!(
            capture.get("trace_id").and_then(Value::as_str),
            Some("req-t1")
        );
        let doc = capture.get("trace").unwrap().to_compact();
        spo_obs::json::validate_trace(&doc).expect("stored capture conforms to spo-trace/1");
        assert!(
            doc.contains("queue.wait"),
            "admission latency is on the timeline"
        );
        assert!(
            doc.contains("/worker"),
            "engine worker lanes made it into the capture"
        );
        let missing = rpc(r#"{"spo-rpc":1,"id":6,"method":"trace","params":{"trace_id":"nope"}}"#);
        assert_eq!(missing.get("status").and_then(Value::as_str), Some("error"));
        let stats = rpc(r#"{"spo-rpc":1,"method":"stats"}"#);
        let result = stats.get("result").unwrap();
        assert_eq!(result.get("warm_hits").and_then(Value::as_u64), Some(1));
        assert!(result.get("uptime_secs").and_then(Value::as_u64).is_some());
        assert_eq!(result.get("queue_depth").and_then(Value::as_u64), Some(0));
        let methods = result.get("methods").unwrap();
        assert_eq!(
            methods
                .get("query")
                .and_then(|m| m.get("count"))
                .and_then(Value::as_u64),
            Some(3)
        );
        assert!(methods
            .get("query")
            .and_then(|m| m.get("p99_us"))
            .and_then(Value::as_u64)
            .is_some());
        spo_obs::json::validate_stats(&result.get("stats").unwrap().to_compact())
            .expect("embedded stats payload conforms to spo-stats/1");
        let bye = rpc(r#"{"spo-rpc":1,"id":9,"method":"shutdown"}"#);
        assert_eq!(bye.get("status").and_then(Value::as_str), Some("ok"));
        let drained = daemon.join().unwrap().unwrap();
        assert!(drained.graceful, "no in-flight work to cancel");
        assert_eq!(drained.sessions, 1);
        assert!(drained.requests >= 6);
        assert!(!socket.exists(), "socket file removed on drain");
        let _ = std::fs::remove_file(&jir);
    }

    #[test]
    fn options_key_distinguishes_resident_state() {
        // Belt and braces for the (program, options) keying discipline:
        // distinct specs map to distinct keys, so resident stores and
        // analyses can never be shared across option sets.
        let specs = [
            OptionsSpec::default(),
            OptionsSpec {
                broad: true,
                ..OptionsSpec::default()
            },
            OptionsSpec {
                no_icp: true,
                ..OptionsSpec::default()
            },
            OptionsSpec {
                intra_only: true,
                ..OptionsSpec::default()
            },
        ];
        let keys: std::collections::BTreeSet<String> = specs.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), specs.len());
    }
}
