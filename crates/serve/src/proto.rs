//! The `spo-rpc/1` wire protocol: line-delimited JSON.
//!
//! Every request is one JSON object on one line:
//!
//! ```text
//! {"spo-rpc":1, "id":7, "method":"query",
//!  "params":{"name":"left"}, "timeout_ms":250}
//! ```
//!
//! * `spo-rpc` — protocol version, required, must be `1`;
//! * `id` — optional number or string, echoed verbatim in the response;
//! * `method` — one of `load`, `analyze`, `query`, `diff`, `stats`,
//!   `trace`, `reload`, `shutdown`;
//! * `params` — method-specific object (may be omitted when empty);
//! * `timeout_ms` — optional per-request admission deadline (≥ 1);
//! * `trace_id` — optional string naming this request's flight-recorder
//!   capture, echoed in the response and usable with the `trace` method
//!   to fetch the request's timeline afterwards.
//!
//! Responses are rendered by hand with a **fixed field order** (`spo-rpc`,
//! `id`, `status`, `trace_id` when the request carried one, then the
//! payload), so a response is a pure function of the request and the
//! served state — the byte-identity guarantee rests on this, not on any
//! map-iteration accident. Requests without a `trace_id` get responses
//! without one, byte-identical to pre-trace daemons:
//!
//! ```text
//! {"spo-rpc":1,"id":7,"status":"ok","result":{...}}
//! {"spo-rpc":1,"id":7,"status":"ok","trace_id":"t1","result":{...}}
//! {"spo-rpc":1,"id":7,"status":"degraded","result":{...},"diagnostics":[...]}
//! {"spo-rpc":1,"id":7,"status":"error","error":{"kind":"...","message":"..."}}
//! ```

use spo_guard::Diagnostic;
use spo_obs::json::{self, escape, Value};
use std::time::Duration;

/// The protocol version spoken by this crate.
pub const PROTOCOL_VERSION: u64 = 1;

/// The version field every request must carry.
pub const PROTOCOL_FIELD: &str = "spo-rpc";

/// Typed error kinds carried by `status:"error"` responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// The line was not valid JSON.
    Parse,
    /// Valid JSON that violates the request shape (missing/invalid
    /// fields, bad version, zero timeout).
    Protocol,
    /// A well-formed request naming a method this protocol lacks.
    UnknownMethod,
    /// The request line exceeded the daemon's line-length cap.
    Oversized,
    /// A named program or entry point is not loaded/present.
    NotFound,
    /// A source file could not be read during `load`/`reload`.
    Io,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
}

impl ErrorKind {
    /// The wire label of this kind.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Protocol => "protocol",
            ErrorKind::UnknownMethod => "unknown-method",
            ErrorKind::Oversized => "oversized",
            ErrorKind::NotFound => "not-found",
            ErrorKind::Io => "io",
            ErrorKind::ShuttingDown => "shutting-down",
        }
    }
}

/// A typed request failure: the session stays alive, the client gets a
/// `status:"error"` line.
#[derive(Clone, Debug)]
pub struct RequestError {
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    /// Creates an error of `kind` with `message`.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> RequestError {
        RequestError {
            kind,
            message: message.into(),
        }
    }
}

/// A request id, stored as its compact JSON rendering (`null` when the
/// request carried none) so the response echoes it byte-for-byte.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RequestId(String);

impl RequestId {
    /// The id of a request that carried none.
    pub fn none() -> RequestId {
        RequestId("null".to_owned())
    }

    /// The id as a JSON fragment (`7`, `"abc"`, or `null`).
    pub fn as_json(&self) -> &str {
        &self.0
    }
}

/// Analysis options a request can select, mirroring the CLI's
/// `--broad`/`--no-icp`/`--intra-only` flags. Doubles as the map key for
/// warm per-(program, options) state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct OptionsSpec {
    /// `--broad`: broad event definition.
    pub broad: bool,
    /// `--no-icp`: disable interprocedural constant propagation.
    pub no_icp: bool,
    /// `--intra-only`: intraprocedural ablation.
    pub intra_only: bool,
}

impl OptionsSpec {
    /// The equivalent [`spo_core::AnalysisOptions`].
    pub fn to_options(self) -> spo_core::AnalysisOptions {
        let mut options = spo_core::AnalysisOptions::default();
        if self.broad {
            options.events = spo_core::EventDef::Broad;
        }
        if self.no_icp {
            options.icp = false;
        }
        if self.intra_only {
            options.interprocedural = false;
        }
        options
    }

    /// The intraprocedural ablation of this spec (used by `diff` for
    /// root-cause classification, exactly as the engine's `compare_all`).
    pub fn intra(self) -> OptionsSpec {
        OptionsSpec {
            intra_only: true,
            ..self
        }
    }

    /// A short stable label (for stats and reload summaries).
    pub fn key(self) -> String {
        format!(
            "broad={},icp={},inter={}",
            u8::from(self.broad),
            u8::from(!self.no_icp),
            u8::from(!self.intra_only),
        )
    }
}

/// One decoded request method with its parameters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Method {
    /// Load (or replace) a program under a name from `.jir` files.
    Load {
        /// Program name, the handle later requests use.
        name: String,
        /// Source files, layered in order.
        paths: Vec<String>,
    },
    /// Ensure the named program's policies are computed and resident.
    Analyze {
        /// Program name.
        name: String,
        /// Analysis options.
        options: OptionsSpec,
    },
    /// Fetch the resident report (whole library or one entry point).
    Query {
        /// Program name.
        name: String,
        /// Entry-point signature; absent = the full listing.
        entry: Option<String>,
        /// Analysis options.
        options: OptionsSpec,
    },
    /// Difference two loaded programs' policies.
    Diff {
        /// Left program name.
        left: String,
        /// Right program name.
        right: String,
        /// Analysis options.
        options: OptionsSpec,
    },
    /// Daemon counters plus an embedded `spo-stats/1` snapshot.
    Stats,
    /// Fetch a recent request's flight-recorder timeline (`spo-trace/1`).
    Trace {
        /// The `trace_id` of the capture to fetch; absent = most recent.
        id: Option<String>,
    },
    /// Re-read a program's sources and re-analyze warm option sets.
    Reload {
        /// Program name.
        name: String,
    },
    /// Stop accepting work, drain, and exit.
    Shutdown,
}

impl Method {
    /// The wire name (for per-method counters).
    pub fn label(&self) -> &'static str {
        match self {
            Method::Load { .. } => "load",
            Method::Analyze { .. } => "analyze",
            Method::Query { .. } => "query",
            Method::Diff { .. } => "diff",
            Method::Stats => "stats",
            Method::Trace { .. } => "trace",
            Method::Reload { .. } => "reload",
            Method::Shutdown => "shutdown",
        }
    }
}

/// One decoded request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Echoed id.
    pub id: RequestId,
    /// Decoded method and parameters.
    pub method: Method,
    /// Per-request admission deadline.
    pub timeout: Option<Duration>,
    /// Client-supplied flight-recorder capture name. When present the
    /// daemon records a timeline for this request, echoes the id in the
    /// response envelope, and serves the capture via the `trace` method.
    pub trace_id: Option<String>,
}

/// Parses one request line. On failure the id (when one could be read)
/// rides along so the error response still correlates with the request.
pub fn parse_request(line: &str) -> Result<Request, (RequestId, RequestError)> {
    let bad = |id: &RequestId, kind: ErrorKind, msg: String| {
        Err((id.clone(), RequestError::new(kind, msg)))
    };
    let none = RequestId::none();
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return bad(&none, ErrorKind::Parse, format!("invalid JSON: {e}")),
    };
    if doc.as_object().is_none() {
        return bad(
            &none,
            ErrorKind::Protocol,
            "request is not an object".to_owned(),
        );
    }
    let id = match doc.get("id") {
        None | Some(Value::Null) => RequestId::none(),
        Some(Value::UInt(n)) => RequestId(n.to_string()),
        Some(Value::Str(s)) => RequestId(format!("\"{}\"", escape(s))),
        Some(_) => {
            return bad(
                &none,
                ErrorKind::Protocol,
                "\"id\" must be a number or string".to_owned(),
            )
        }
    };
    match doc.get(PROTOCOL_FIELD).and_then(Value::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        _ => {
            return bad(
                &id,
                ErrorKind::Protocol,
                format!(
                "missing or unsupported \"{PROTOCOL_FIELD}\" version (expected {PROTOCOL_VERSION})"
            ),
            )
        }
    }
    let timeout = match doc.get("timeout_ms") {
        None => None,
        Some(Value::UInt(0)) => {
            // Mirrors the CLI's zero-budget rejection: 0 would silently
            // mean "unlimited", not "immediately".
            return bad(
                &id,
                ErrorKind::Protocol,
                "\"timeout_ms\" must be at least 1 (omit the field for unlimited)".to_owned(),
            );
        }
        Some(Value::UInt(ms)) => Some(Duration::from_millis(*ms)),
        Some(_) => {
            return bad(
                &id,
                ErrorKind::Protocol,
                "\"timeout_ms\" must be an unsigned integer".to_owned(),
            )
        }
    };
    let trace_id = match doc.get("trace_id") {
        None => None,
        Some(Value::Str(s)) if !s.is_empty() => Some(s.clone()),
        Some(_) => {
            return bad(
                &id,
                ErrorKind::Protocol,
                "\"trace_id\" must be a non-empty string".to_owned(),
            )
        }
    };
    let Some(method_name) = doc.get("method").and_then(Value::as_str) else {
        return bad(
            &id,
            ErrorKind::Protocol,
            "missing string field \"method\"".to_owned(),
        );
    };
    let params = doc.get("params");
    if let Some(p) = params {
        if p.as_object().is_none() {
            return bad(
                &id,
                ErrorKind::Protocol,
                "\"params\" must be an object".to_owned(),
            );
        }
    }
    let method = match decode_method(method_name, params) {
        Ok(m) => m,
        Err(e) => return Err((id, e)),
    };
    Ok(Request {
        id,
        method,
        timeout,
        trace_id,
    })
}

fn require_str(params: Option<&Value>, field: &str) -> Result<String, RequestError> {
    params
        .and_then(|p| p.get(field))
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| {
            RequestError::new(
                ErrorKind::Protocol,
                format!("missing string param \"{field}\""),
            )
        })
}

fn optional_str(params: Option<&Value>, field: &str) -> Result<Option<String>, RequestError> {
    match params.and_then(|p| p.get(field)) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(RequestError::new(
            ErrorKind::Protocol,
            format!("param \"{field}\" must be a string"),
        )),
    }
}

fn optional_bool(params: Option<&Value>, field: &str) -> Result<bool, RequestError> {
    match params.and_then(|p| p.get(field)) {
        None => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(RequestError::new(
            ErrorKind::Protocol,
            format!("param \"{field}\" must be a boolean"),
        )),
    }
}

fn options_spec(params: Option<&Value>) -> Result<OptionsSpec, RequestError> {
    Ok(OptionsSpec {
        broad: optional_bool(params, "broad")?,
        no_icp: optional_bool(params, "no_icp")?,
        intra_only: optional_bool(params, "intra_only")?,
    })
}

fn decode_method(name: &str, params: Option<&Value>) -> Result<Method, RequestError> {
    match name {
        "load" => {
            let prog = require_str(params, "name")?;
            let paths = match params.and_then(|p| p.get("paths")) {
                Some(Value::Array(items)) if !items.is_empty() => items
                    .iter()
                    .map(|v| {
                        v.as_str().map(str::to_owned).ok_or_else(|| {
                            RequestError::new(
                                ErrorKind::Protocol,
                                "param \"paths\" must be an array of strings",
                            )
                        })
                    })
                    .collect::<Result<Vec<String>, RequestError>>()?,
                _ => {
                    return Err(RequestError::new(
                        ErrorKind::Protocol,
                        "missing non-empty array param \"paths\"",
                    ))
                }
            };
            Ok(Method::Load { name: prog, paths })
        }
        "analyze" => Ok(Method::Analyze {
            name: require_str(params, "name")?,
            options: options_spec(params)?,
        }),
        "query" => Ok(Method::Query {
            name: require_str(params, "name")?,
            entry: optional_str(params, "entry")?,
            options: options_spec(params)?,
        }),
        "diff" => Ok(Method::Diff {
            left: require_str(params, "left")?,
            right: require_str(params, "right")?,
            options: options_spec(params)?,
        }),
        "stats" => Ok(Method::Stats),
        "trace" => Ok(Method::Trace {
            id: optional_str(params, "trace_id")?,
        }),
        "reload" => Ok(Method::Reload {
            name: require_str(params, "name")?,
        }),
        "shutdown" => Ok(Method::Shutdown),
        other => Err(RequestError::new(
            ErrorKind::UnknownMethod,
            format!("unknown method \"{other}\""),
        )),
    }
}

// ---------------------------------------------------------------------------
// Response rendering

/// An incremental single-line JSON object writer with caller-fixed field
/// order — the deterministic building block for `result` payloads.
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Starts an empty object.
    #[allow(clippy::new_without_default)]
    pub fn new() -> JsonObj {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Appends a pre-rendered JSON fragment under `key`.
    pub fn raw(mut self, key: &str, fragment: &str) -> JsonObj {
        self.key(key);
        self.buf.push_str(fragment);
        self
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObj {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonObj {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObj {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns its rendering.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn envelope(id: &RequestId, status: &str, trace_id: Option<&str>) -> String {
    let mut out = format!(
        "{{\"{PROTOCOL_FIELD}\":{PROTOCOL_VERSION},\"id\":{},\"status\":\"{status}\"",
        id.as_json()
    );
    if let Some(t) = trace_id {
        out.push_str(",\"trace_id\":\"");
        out.push_str(&escape(t));
        out.push('"');
    }
    out
}

/// Renders a `status:"ok"` response around a pre-rendered result object.
/// The `trace_id` is echoed right after `status` only when the request
/// carried one, keeping untraced responses byte-identical.
pub fn render_ok(id: &RequestId, trace_id: Option<&str>, result: &str) -> String {
    let mut out = envelope(id, "ok", trace_id);
    out.push_str(",\"result\":");
    out.push_str(result);
    out.push('}');
    out
}

/// Renders a `status:"degraded"` response: the partial result plus the
/// sorted degradation records, mirroring the one-shot CLI's exit-code-2
/// contract (results are a lower bound).
pub fn render_degraded(
    id: &RequestId,
    trace_id: Option<&str>,
    result: &str,
    diagnostics: &[Diagnostic],
) -> String {
    let mut out = envelope(id, "degraded", trace_id);
    out.push_str(",\"result\":");
    out.push_str(result);
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(
            &JsonObj::new()
                .str("severity", &d.severity.to_string())
                .str("phase", &d.phase.to_string())
                .str("root", &d.root)
                .str("cause", d.cause.label())
                .str("message", &d.message)
                .finish(),
        );
    }
    out.push_str("]}");
    out
}

/// Renders a `status:"error"` response.
pub fn render_error(id: &RequestId, error: &RequestError) -> String {
    let mut out = envelope(id, "error", None);
    out.push_str(",\"error\":");
    out.push_str(
        &JsonObj::new()
            .str("kind", error.kind.label())
            .str("message", &error.message)
            .finish(),
    );
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let req = parse_request(
            r#"{"spo-rpc":1,"id":7,"method":"query","params":{"name":"left","broad":true},"timeout_ms":250}"#,
        )
        .unwrap();
        assert_eq!(req.id.as_json(), "7");
        assert_eq!(req.timeout, Some(Duration::from_millis(250)));
        assert_eq!(req.trace_id, None);
        assert_eq!(
            req.method,
            Method::Query {
                name: "left".to_owned(),
                entry: None,
                options: OptionsSpec {
                    broad: true,
                    ..OptionsSpec::default()
                },
            }
        );
    }

    #[test]
    fn string_ids_echo_escaped() {
        let req = parse_request(r#"{"spo-rpc":1,"id":"a\"b","method":"stats"}"#).unwrap();
        assert_eq!(req.id.as_json(), r#""a\"b""#);
        assert_eq!(req.method, Method::Stats);
    }

    #[test]
    fn typed_errors_for_malformed_lines() {
        let (_, e) = parse_request("not json").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Parse);
        let (_, e) = parse_request("[1,2]").unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        let (id, e) = parse_request(r#"{"spo-rpc":2,"id":3,"method":"stats"}"#).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert_eq!(id.as_json(), "3", "id still correlates the error");
        let (_, e) = parse_request(r#"{"spo-rpc":1,"method":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnknownMethod);
        assert!(e.message.contains("frobnicate"));
        let (_, e) = parse_request(
            r#"{"spo-rpc":1,"method":"analyze","params":{"name":"x"},"timeout_ms":0}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("at least 1"), "{}", e.message);
        let (_, e) =
            parse_request(r#"{"spo-rpc":1,"method":"load","params":{"name":"x"}}"#).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("paths"));
    }

    #[test]
    fn responses_have_fixed_field_order() {
        let id = RequestId("9".to_owned());
        let result = JsonObj::new()
            .str("report", "r\n")
            .u64("exit_code", 0)
            .finish();
        assert_eq!(
            render_ok(&id, None, &result),
            r#"{"spo-rpc":1,"id":9,"status":"ok","result":{"report":"r\n","exit_code":0}}"#
        );
        assert_eq!(
            render_ok(&id, Some("t-1"), &result),
            r#"{"spo-rpc":1,"id":9,"status":"ok","trace_id":"t-1","result":{"report":"r\n","exit_code":0}}"#
        );
        let err = RequestError::new(ErrorKind::Oversized, "line exceeds 4096 bytes");
        assert_eq!(
            render_error(&RequestId::none(), &err),
            r#"{"spo-rpc":1,"id":null,"status":"error","error":{"kind":"oversized","message":"line exceeds 4096 bytes"}}"#
        );
    }

    #[test]
    fn trace_ids_parse_and_gate() {
        let req =
            parse_request(r#"{"spo-rpc":1,"id":1,"method":"stats","trace_id":"req-42"}"#).unwrap();
        assert_eq!(req.trace_id.as_deref(), Some("req-42"));
        let (_, e) =
            parse_request(r#"{"spo-rpc":1,"id":1,"method":"stats","trace_id":7}"#).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        let (_, e) =
            parse_request(r#"{"spo-rpc":1,"id":1,"method":"stats","trace_id":""}"#).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        let req = parse_request(
            r#"{"spo-rpc":1,"id":1,"method":"trace","params":{"trace_id":"req-42"}}"#,
        )
        .unwrap();
        assert_eq!(
            req.method,
            Method::Trace {
                id: Some("req-42".to_owned())
            }
        );
        assert_eq!(
            parse_request(r#"{"spo-rpc":1,"id":1,"method":"trace"}"#)
                .unwrap()
                .method,
            Method::Trace { id: None }
        );
    }

    #[test]
    fn options_spec_round_trips_and_keys() {
        let spec = OptionsSpec {
            broad: true,
            no_icp: true,
            intra_only: false,
        };
        let opts = spec.to_options();
        assert_eq!(opts.events, spo_core::EventDef::Broad);
        assert!(!opts.icp);
        assert!(opts.interprocedural);
        assert_eq!(spec.key(), "broad=1,icp=0,inter=1");
        assert_eq!(spec.intra().key(), "broad=1,icp=0,inter=0");
    }
}
