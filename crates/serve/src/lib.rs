//! `spo-serve`: the resident oracle daemon.
//!
//! One-shot `spo analyze`/`spo diff` invocations pay program parsing,
//! call-graph construction, and full interprocedural analysis on every
//! run. This crate keeps all of that **resident**: a long-running daemon
//! holds loaded programs, their [`spo_engine::ResidentStore`] summary
//! stores, and finished policy analyses in memory, and serves repeat
//! queries over a Unix socket (optionally TCP) in the line-delimited JSON
//! protocol `spo-rpc/1` ([`proto`]).
//!
//! The three load-bearing properties, in decreasing order of subtlety:
//!
//! 1. **Byte identity.** A `query` or `diff` response embeds exactly the
//!    bytes the one-shot CLI would print for the same inputs, regardless
//!    of how many clients interleave: reports are rendered once through
//!    [`spo_core::render_analysis`]/[`spo_core::render_reports`] and the
//!    stored result is immutable.
//! 2. **Admission control.** Every request runs under its own
//!    [`spo_guard::GuardConfig`] derived via `for_request`: a cancel
//!    token linked to the daemon's shutdown token, plus the request's
//!    `timeout_ms` tightened onto the operator's base budget. Over-budget
//!    work returns a typed `degraded` response and never poisons the warm
//!    state other sessions read.
//! 3. **Warm invalidation.** `reload` re-parses a program's sources and
//!    re-analyzes previously-warm option sets through the persistent
//!    [`spo_cache::PolicyCache`], so only roots whose dependence cone the
//!    edit invalidated are recomputed.
//!
//! The CLI front end is `spo serve` (daemon) and `spo rpc` (one-line
//! client); see the repository README for usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod proto;
pub mod registry;

pub use daemon::{run, DrainReport, ServeConfig};
pub use proto::{ErrorKind, Method, OptionsSpec, Request, RequestError, RequestId};
pub use registry::{Analysis, DiffOutcome, LoadSummary, ProgramEntry, Registry, ReloadSummary};
