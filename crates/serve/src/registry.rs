//! The daemon's warm state: loaded programs and their resident analyses.
//!
//! A [`Registry`] maps program names to immutable [`ProgramEntry`]
//! snapshots. Each entry keeps, per [`OptionsSpec`], the finished
//! [`Analysis`] (report bytes, diagnostics, exit code) and the engine's
//! [`ResidentStore`] of interprocedural summaries. Repeat requests are
//! answered from the analysis map without touching the engine; `reload`
//! swaps in a fresh snapshot and re-analyzes previously-warm option sets
//! through the persistent [`PolicyCache`], so only roots whose dependence
//! cone changed are recomputed.
//!
//! Soundness discipline (see [`ResidentStore`]): resident summary stores
//! and cached analyses are keyed per *(program entry, options)* and a
//! reload always builds a fresh entry with empty maps — summaries never
//! survive a program swap, and never leak across option sets.
//!
//! Degraded analyses (budget/deadline/cancel-tripped) are returned to the
//! requesting session but **not** inserted into the warm map: a partial
//! result must not become the resident answer for later, unconstrained
//! requests.

use crate::proto::{ErrorKind, OptionsSpec, RequestError};
use spo_cache::PolicyCache;
use spo_core::{
    diff_libraries, group_differences, render_analysis, render_reports, root_keys, LibraryPolicies,
};
use spo_engine::{AnalysisEngine, ResidentStore};
use spo_guard::{Cause, Diagnostic, GuardConfig, Phase, Severity};
use spo_jir::Program;
use spo_obs::trace::Tracer;
use spo_obs::Recorder;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

/// One finished analysis of a program under one option set. The `report`
/// field holds exactly the bytes `spo analyze` would print for the same
/// inputs ([`spo_core::render_analysis`] is the single renderer both go
/// through), which is what makes daemon responses byte-identical to the
/// one-shot CLI.
#[derive(Debug)]
pub struct Analysis {
    /// The computed policies.
    pub lib: LibraryPolicies,
    /// `spo analyze`-identical report bytes.
    pub report: String,
    /// Sorted parse warnings plus degraded-root records.
    pub diagnostics: Vec<Diagnostic>,
    /// The exit code the one-shot CLI would return (0 or 2).
    pub exit_code: u8,
    /// Persistent-cache hits for the run that produced this analysis.
    pub cache_hits: u64,
    /// Persistent-cache misses (cold roots) for that run.
    pub cache_misses: u64,
}

/// An immutable snapshot of one loaded program plus its warm state.
#[derive(Debug)]
pub struct ProgramEntry {
    /// The handle requests use.
    pub name: String,
    /// Source files, kept for `reload`.
    pub paths: Vec<String>,
    /// The parsed program.
    pub program: Program,
    /// Sorted parse-recovery warnings from loading.
    pub parse_warnings: Vec<Diagnostic>,
    /// Number of classes parsed.
    pub classes: usize,
    /// Number of API entry points.
    pub entry_points: usize,
    analyses: Mutex<BTreeMap<OptionsSpec, Arc<Analysis>>>,
    residents: Mutex<BTreeMap<OptionsSpec, Arc<ResidentStore>>>,
}

/// What `load` reports back.
#[derive(Debug)]
pub struct LoadSummary {
    /// Classes parsed.
    pub classes: usize,
    /// API entry points found.
    pub entry_points: usize,
    /// Parse-recovery warnings.
    pub warnings: Vec<Diagnostic>,
    /// Whether an earlier program under the same name was replaced.
    pub replaced: bool,
}

/// What `reload` reports back: the fresh load summary plus, per
/// re-analyzed option set, the warm-start hit/miss split showing how much
/// of the cone survived the edit.
#[derive(Debug)]
pub struct ReloadSummary {
    /// The fresh load.
    pub load: LoadSummary,
    /// `(options key, cache hits, cache misses)` per re-analyzed set.
    pub reanalyzed: Vec<(String, u64, u64)>,
}

/// The outcome of differencing two loaded programs. Computed fresh from
/// the (warm) per-program analyses on every request — the composition is
/// deterministic, so repeats are byte-identical without a diff cache that
/// would need its own invalidation story.
#[derive(Debug)]
pub struct DiffOutcome {
    /// `spo diff`-identical report bytes.
    pub report: String,
    /// Sorted parse warnings plus degraded roots of both full runs.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether any difference groups were reported.
    pub findings: bool,
    /// The exit code the one-shot CLI would return (0, 1, or 2).
    pub exit_code: u8,
}

/// The daemon's program table and analysis executor.
#[derive(Debug)]
pub struct Registry {
    programs: RwLock<BTreeMap<String, Arc<ProgramEntry>>>,
    jobs: usize,
    cache: Option<Arc<PolicyCache>>,
    recorder: Recorder,
}

impl Registry {
    /// Creates an empty registry. `jobs` is the engine worker count per
    /// analysis (0 = all CPUs); `cache` is the shared persistent summary
    /// cache warm-starting analyses and reloads.
    pub fn new(jobs: usize, cache: Option<Arc<PolicyCache>>, recorder: Recorder) -> Registry {
        Registry {
            programs: RwLock::new(BTreeMap::new()),
            jobs,
            cache,
            recorder,
        }
    }

    /// The shared persistent cache, if one is attached.
    pub fn cache(&self) -> Option<&Arc<PolicyCache>> {
        self.cache.as_ref()
    }

    /// Currently loaded program names.
    pub fn names(&self) -> Vec<String> {
        self.programs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Looks up a loaded program.
    pub fn get(&self, name: &str) -> Result<Arc<ProgramEntry>, RequestError> {
        self.programs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| {
                RequestError::new(
                    ErrorKind::NotFound,
                    format!("no program loaded under \"{name}\""),
                )
            })
    }

    /// Parses `paths` into a fresh entry (mirroring the CLI's recovering
    /// loader: malformed members are dropped and reported as warnings,
    /// only I/O errors are fatal).
    fn build_entry(&self, name: &str, paths: &[String]) -> Result<Arc<ProgramEntry>, RequestError> {
        let mut program = Program::new();
        let mut warnings: Vec<Diagnostic> = Vec::new();
        for path in paths {
            let src = std::fs::read_to_string(path)
                .map_err(|e| RequestError::new(ErrorKind::Io, format!("{path}: {e}")))?;
            let recovery =
                spo_jir::parse_into_recovering_traced(&src, &mut program, &self.recorder);
            for d in recovery.diagnostics {
                warnings.push(Diagnostic {
                    severity: Severity::Warning,
                    phase: Phase::Parse,
                    root: format!("{path}:{}:{}", d.line, d.col),
                    cause: Cause::Parse,
                    message: format!("{} (dropped {})", d.message, d.dropped),
                });
            }
        }
        warnings.sort();
        let classes = program.class_count();
        let entry_points = spo_resolve::entry_points(&program).len();
        Ok(Arc::new(ProgramEntry {
            name: name.to_owned(),
            paths: paths.to_vec(),
            program,
            parse_warnings: warnings,
            classes,
            entry_points,
            analyses: Mutex::new(BTreeMap::new()),
            residents: Mutex::new(BTreeMap::new()),
        }))
    }

    /// Loads (or replaces) a program under `name`.
    pub fn load(&self, name: &str, paths: &[String]) -> Result<LoadSummary, RequestError> {
        let entry = self.build_entry(name, paths)?;
        let summary = LoadSummary {
            classes: entry.classes,
            entry_points: entry.entry_points,
            warnings: entry.parse_warnings.clone(),
            replaced: false,
        };
        let replaced = self
            .programs
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_owned(), entry)
            .is_some();
        Ok(LoadSummary {
            replaced,
            ..summary
        })
    }

    /// Returns the analysis of `entry` under `spec`, computing it if no
    /// warm copy exists. The boolean is `true` on a warm (resident) hit.
    ///
    /// Concurrent cold requests for the same key may race the
    /// computation; both produce identical bytes (the engine's root-order
    /// merge is deterministic) and the first insert wins, so every caller
    /// hands back the same resident `Arc` afterwards.
    pub fn analysis(
        &self,
        entry: &ProgramEntry,
        spec: OptionsSpec,
        guard: &GuardConfig,
    ) -> (Arc<Analysis>, bool) {
        self.analysis_traced(entry, spec, guard, &Tracer::disabled())
    }

    /// [`Registry::analysis`] with a flight recorder attached: when
    /// `tracer` is enabled the engine opens per-worker lanes in it for
    /// this request's computation. Warm hits never touch the engine, so a
    /// warm trace shows only the request-level span — which is itself the
    /// telemetry (the request cost nothing).
    pub fn analysis_traced(
        &self,
        entry: &ProgramEntry,
        spec: OptionsSpec,
        guard: &GuardConfig,
        tracer: &Tracer,
    ) -> (Arc<Analysis>, bool) {
        if let Some(a) = entry
            .analyses
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&spec)
        {
            return (Arc::clone(a), true);
        }
        let resident = Arc::clone(
            entry
                .residents
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(spec)
                .or_insert_with(|| Arc::new(ResidentStore::default())),
        );
        let mut engine = AnalysisEngine::new(self.jobs)
            .with_recorder(self.recorder.clone())
            .with_guard(guard.clone())
            .with_tracer(tracer.clone())
            .with_resident(resident);
        if let Some(cache) = &self.cache {
            engine = engine.with_cache(Arc::clone(cache));
        }
        let (lib, stats) = engine.analyze_library(&entry.program, &entry.name, spec.to_options());
        // Cache fallback warnings go to the daemon's stats stream — like
        // the CLI they never taint the response's degraded state, because
        // an unusable cache entry only means the root ran cold.
        if let Some(cache) = &self.cache {
            let mut ds = cache.take_diagnostics();
            ds.sort();
            for d in &ds {
                self.recorder.diagnostic(
                    &d.severity.to_string(),
                    &d.phase.to_string(),
                    &d.root,
                    d.cause.label(),
                    &d.message,
                );
            }
        }
        let mut diagnostics = entry.parse_warnings.clone();
        diagnostics.extend(lib.degraded.values().cloned());
        diagnostics.sort();
        let degraded_run = !lib.degraded.is_empty();
        let analysis = Arc::new(Analysis {
            report: render_analysis(&lib),
            exit_code: if diagnostics.is_empty() { 0 } else { 2 },
            lib,
            diagnostics,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
        });
        if degraded_run {
            // A budget-clipped result answers only the session that asked
            // for it; the warm map keeps waiting for a clean run.
            return (analysis, false);
        }
        let winner = Arc::clone(
            entry
                .analyses
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(spec)
                .or_insert(analysis),
        );
        (winner, false)
    }

    /// Differences two loaded programs under `spec`, replicating the
    /// engine's `compare_all` composition: full-options diff, grouped by
    /// root cause against the intraprocedural ablation's key set. The
    /// boolean is `true` when all four constituent analyses were warm.
    pub fn diff(
        &self,
        left: &ProgramEntry,
        right: &ProgramEntry,
        spec: OptionsSpec,
        guard: &GuardConfig,
    ) -> (DiffOutcome, bool) {
        self.diff_traced(left, right, spec, guard, &Tracer::disabled())
    }

    /// [`Registry::diff`] with a flight recorder attached; all four
    /// constituent analyses share the request's tracer.
    pub fn diff_traced(
        &self,
        left: &ProgramEntry,
        right: &ProgramEntry,
        spec: OptionsSpec,
        guard: &GuardConfig,
        tracer: &Tracer,
    ) -> (DiffOutcome, bool) {
        let (left_full, w1) = self.analysis_traced(left, spec, guard, tracer);
        let (right_full, w2) = self.analysis_traced(right, spec, guard, tracer);
        let (left_intra, w3) = self.analysis_traced(left, spec.intra(), guard, tracer);
        let (right_intra, w4) = self.analysis_traced(right, spec.intra(), guard, tracer);
        let diff = diff_libraries(&left_full.lib, &right_full.lib);
        let intra_keys = root_keys(&diff_libraries(&left_intra.lib, &right_intra.lib));
        let groups = group_differences(&diff, &intra_keys);
        let report = render_reports(&diff, &groups);
        let mut diagnostics: Vec<Diagnostic> = left
            .parse_warnings
            .iter()
            .chain(&right.parse_warnings)
            .cloned()
            .collect();
        diagnostics.extend(left_full.lib.degraded.values().cloned());
        diagnostics.extend(right_full.lib.degraded.values().cloned());
        diagnostics.sort();
        let findings = !groups.is_empty();
        let exit_code = if !diagnostics.is_empty() {
            2
        } else {
            u8::from(findings)
        };
        let outcome = DiffOutcome {
            report,
            diagnostics,
            findings,
            exit_code,
        };
        (outcome, w1 && w2 && w3 && w4)
    }

    /// Re-reads a program's sources, swaps in a fresh snapshot, and
    /// re-analyzes every previously-warm option set. With the persistent
    /// cache attached, only roots whose dependence cone was invalidated
    /// by the edit recompute — the per-set hit/miss split in the summary
    /// shows exactly how much.
    pub fn reload(&self, name: &str, guard: &GuardConfig) -> Result<ReloadSummary, RequestError> {
        let old = self.get(name)?;
        let fresh = self.build_entry(name, &old.paths)?;
        let warm_specs: Vec<OptionsSpec> = old
            .analyses
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .copied()
            .collect();
        let load = LoadSummary {
            classes: fresh.classes,
            entry_points: fresh.entry_points,
            warnings: fresh.parse_warnings.clone(),
            replaced: true,
        };
        self.programs
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_owned(), Arc::clone(&fresh));
        let mut reanalyzed = Vec::new();
        for spec in warm_specs {
            let (a, _) = self.analysis(&fresh, spec, guard);
            reanalyzed.push((spec.key(), a.cache_hits, a.cache_misses));
        }
        Ok(ReloadSummary { load, reanalyzed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEFT: &str = r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
  method public native void checkWrite(java.lang.String file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
class t.A {
  method public void read() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("f");
    return;
  }
}
"#;

    const RIGHT: &str = r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
  method public native void checkWrite(java.lang.String file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
class t.A {
  method public void read() {
    return;
  }
}
"#;

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!(
            "spo-serve-registry-{}-{name}.jir",
            std::process::id()
        ));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn warm_analysis_is_shared_and_byte_stable() {
        let registry = Registry::new(2, None, Recorder::disabled());
        let path = write_temp("warm", LEFT);
        let summary = registry.load("lib", &[path]).unwrap();
        assert!(summary.entry_points >= 1);
        assert!(!summary.replaced);
        let entry = registry.get("lib").unwrap();
        let guard = GuardConfig::default();
        let (cold, warm_hit) = registry.analysis(&entry, OptionsSpec::default(), &guard);
        assert!(!warm_hit);
        let (warm, warm_hit) = registry.analysis(&entry, OptionsSpec::default(), &guard);
        assert!(warm_hit);
        assert!(
            Arc::ptr_eq(&cold, &warm),
            "repeat queries share the resident analysis"
        );
        assert!(cold.report.contains("entry "));
        assert_eq!(cold.exit_code, 0);
    }

    #[test]
    fn diff_reports_missing_check_and_unknown_names_fail_typed() {
        let registry = Registry::new(2, None, Recorder::disabled());
        registry.load("left", &[write_temp("dl", LEFT)]).unwrap();
        registry.load("right", &[write_temp("dr", RIGHT)]).unwrap();
        let guard = GuardConfig::default();
        let left = registry.get("left").unwrap();
        let right = registry.get("right").unwrap();
        let (diff, warm) = registry.diff(&left, &right, OptionsSpec::default(), &guard);
        assert!(!warm);
        assert!(diff.findings);
        assert_eq!(diff.exit_code, 1);
        assert!(diff.report.contains("checkRead"), "{}", diff.report);
        let (again, warm) = registry.diff(&left, &right, OptionsSpec::default(), &guard);
        assert!(warm, "all four constituent analyses are resident now");
        assert_eq!(again.report, diff.report, "diff bytes are reproducible");
        let err = registry.get("middle").unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
    }

    #[test]
    fn reload_reanalyzes_warm_specs_from_fresh_sources() {
        let registry = Registry::new(2, None, Recorder::disabled());
        let path = write_temp("reload", LEFT);
        registry.load("lib", std::slice::from_ref(&path)).unwrap();
        let guard = GuardConfig::default();
        let entry = registry.get("lib").unwrap();
        let (before, _) = registry.analysis(&entry, OptionsSpec::default(), &guard);
        assert!(before.report.contains("checkRead"));
        std::fs::write(&path, RIGHT).unwrap();
        let summary = registry.reload("lib", &guard).unwrap();
        assert!(summary.load.replaced);
        assert_eq!(summary.reanalyzed.len(), 1, "one warm option set re-ran");
        let entry = registry.get("lib").unwrap();
        let (after, warm) = registry.analysis(&entry, OptionsSpec::default(), &guard);
        assert!(warm, "reload left the fresh analysis resident");
        assert!(!after.report.contains("checkRead"), "{}", after.report);
    }
}
