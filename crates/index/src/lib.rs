//! # spo-index — compiled single-file policy index
//!
//! The analysis pipeline answers "what checks guard entry point X?" and
//! "where do two implementations disagree?" by re-deriving
//! [`LibraryPolicies`] from source — seconds of work at scale. This crate
//! compiles a finished `LibraryPolicies` (plus its intraprocedural
//! ablation, which root-cause classification needs) into one small,
//! versioned, checksummed file — `policies.spi`, format `spo-index/1` —
//! so both questions become pure index reads on a sub-millisecond budget.
//!
//! ## Layout (`spo-index/1`, all integers little-endian)
//!
//! ```text
//! "spo-index 1\n"                       text version header
//! str   library name                    (str = u32 length + UTF-8 bytes)
//! str   options token                   (cache-compatible, see options_token)
//! u64   entry-point stat (full)         feeds render_analysis's footer
//! u64   entry-point stat (intra)
//! u32 S; S × str                        string table (signatures, event
//!                                        names, origin methods — interned)
//! u32 C; C × check set                  check-set table: u32 must bits,
//!                                        u32 may bits, u32 D, D × u32 —
//!                                        each distinct (must, may, paths)
//!                                        triple stored once
//! u64 N                                 entry-point count
//! N × 36-byte row                       offset table, sorted by root key:
//!                                        u64 root_key | u32 off | u32 len |
//!                                        u32 flags | u64 content_hash |
//!                                        u64 cone fingerprint
//! u64 B; B bytes                        blob region (off/len index into it)
//! u64   FNV-64 of everything above      whole-file checksum
//! ```
//!
//! Each entry blob holds the full policy then the intra policy, both as:
//! interned signature id, then events (`event key`, u32 check-set id),
//! event origins and check origins (interned string ids). Event keys in
//! blobs are a u8 tag plus an interned u32 name id — unlike the cache
//! blob codec, names are never inlined.
//!
//! ## Query model
//!
//! [`PolicyIndex::parse`] validates the checksum and decodes only the two
//! small shared tables; the offset table and blob region stay borrowed
//! `&[u8]`. A query is two phases, following the fingerprint→evaluate
//! model: [`PolicyIndex::find`] binary-searches the fixed-width offset
//! table by `root_key(signature)` without allocating, then
//! [`PolicyIndex::decode`] materializes just that entry's policies for
//! rendering. Output is byte-identical to the analysis path because both
//! funnel through [`spo_core::render_entry`] / [`spo_core::render_analysis`].
//!
//! ## Corruption discipline
//!
//! Same as the v3 cache pack: a trailing whole-file FNV-64 checksum plus
//! bounded, counted reads ([`codec::Cursor`]) mean a truncated, bit-flipped,
//! or version-bumped index degrades to a typed parse error — callers fall
//! back to full analysis with a diagnostic, never a silent wrong answer
//! and never a panic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use spo_core::{
    render_analysis, render_entry, AnalysisOptions, AnalysisStats, EntryPolicy, EventKey,
    EventPolicy, LibraryPolicies,
};
use spo_dataflow::{BitSet32, Dnf};
use spo_jir::Fnv64;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::path::Path;

pub mod codec;

use codec::Cursor;

/// The on-disk index format version; bumped whenever the layout or the
/// policy semantics it captures change. Old files then read as version
/// mismatches and consumers fall back to full analysis.
pub const FORMAT_VERSION: u32 = 1;

/// Conventional file name for a compiled index.
pub const INDEX_FILE: &str = "policies.spi";

/// Fixed-width offset-table row size in bytes: u64 root key, u32 blob
/// offset, u32 blob length, u32 flags, u64 content hash, u64 fingerprint.
pub const ROW_BYTES: usize = 36;

/// Per-entry flag bits stored in the offset table, readable without
/// decoding the blob.
pub mod flags {
    /// The full (interprocedural) policy performs at least one check.
    pub const HAS_CHECKS: u32 = 1 << 0;
    /// Some event of the full policy has an empty may set — the shape an
    /// unguarded event or a privileged-region-wrapped call site leaves.
    pub const UNGUARDED_EVENT: u32 = 1 << 1;
    /// The intraprocedural ablation policy performs at least one check.
    pub const INTRA_HAS_CHECKS: u32 = 1 << 2;
    /// The index was built with inferred-check-patterns (ICP) guard
    /// recognition enabled.
    pub const OPT_ICP: u32 = 1 << 3;
    /// The index was built from an interprocedural full analysis.
    pub const OPT_INTERPROCEDURAL: u32 = 1 << 4;
    /// The index was built under the broad event definition.
    pub const OPT_BROAD: u32 = 1 << 5;
}

/// Renders the result-affecting analysis options into a stable token. The
/// memo scope is excluded: results are memo-invariant. This is the cache
/// crate's key token, shared so an index and a cache built from the same
/// options agree on identity.
pub fn options_token(options: &AnalysisOptions) -> String {
    format!(
        "icp={} events={:?} interprocedural={}",
        options.icp, options.events, options.interprocedural
    )
}

/// The root key an entry point's signature sorts and binary-searches
/// under: its seedless FNV-64 hash.
pub fn root_key(signature: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(signature.as_bytes());
    h.finish()
}

fn header_line() -> String {
    format!("spo-index {FORMAT_VERSION}\n")
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Interns values of one kind, assigning dense u32 ids in first-use order
/// (deterministic: the builder walks entries in signature order).
struct Interner<T: std::hash::Hash + Eq + Clone> {
    ids: HashMap<T, u32>,
    items: Vec<T>,
}

impl<T: std::hash::Hash + Eq + Clone> Interner<T> {
    fn new() -> Self {
        Interner {
            ids: HashMap::new(),
            items: Vec::new(),
        }
    }

    fn intern(&mut self, item: &T) -> u32 {
        if let Some(&id) = self.ids.get(item) {
            return id;
        }
        let id = self.items.len() as u32;
        self.ids.insert(item.clone(), id);
        self.items.push(item.clone());
        id
    }
}

/// Compiles a library's full and intraprocedural policies into
/// `spo-index/1` bytes.
pub struct IndexBuilder<'a> {
    name: &'a str,
    options: &'a AnalysisOptions,
    full: &'a LibraryPolicies,
    intra: &'a LibraryPolicies,
    fingerprints: Option<&'a BTreeMap<String, u64>>,
}

impl<'a> IndexBuilder<'a> {
    /// Starts a builder over one library's full analysis and its
    /// intraprocedural ablation (both from the same program and options —
    /// the ablation is what root-cause classification diffs against).
    pub fn new(
        name: &'a str,
        options: &'a AnalysisOptions,
        full: &'a LibraryPolicies,
        intra: &'a LibraryPolicies,
    ) -> Self {
        IndexBuilder {
            name,
            options,
            full,
            intra,
            fingerprints: None,
        }
    }

    /// Attaches per-signature dependency-cone fingerprints (from the
    /// cache's [`spo_cache` keyer]); entries without one store 0. Advisory
    /// metadata: consumers use it to cross-check freshness against a
    /// cache, never for correctness.
    pub fn fingerprints(mut self, map: &'a BTreeMap<String, u64>) -> Self {
        self.fingerprints = Some(map);
        self
    }

    /// Builds the sealed index bytes.
    ///
    /// # Errors
    ///
    /// Fails if either analysis has degraded roots (a quarantined root has
    /// *no* stored policy, so compiling it would bake an unsound answer
    /// into a file that outlives the incident), if the two analyses
    /// disagree on the entry-point set, or on a root-key collision.
    pub fn build(&self) -> Result<Vec<u8>, String> {
        if !self.full.degraded.is_empty() || !self.intra.degraded.is_empty() {
            return Err(format!(
                "degraded analysis cannot be compiled into an index ({} quarantined root(s))",
                self.full.degraded.len().max(self.intra.degraded.len())
            ));
        }
        if self.full.entries.len() != self.intra.entries.len()
            || !self
                .full
                .entries
                .keys()
                .zip(self.intra.entries.keys())
                .all(|(a, b)| a == b)
        {
            return Err("full and intra analyses disagree on the entry-point set".to_owned());
        }

        let mut strings: Interner<String> = Interner::new();
        let mut sets: Interner<(u32, u32, Vec<u32>)> = Interner::new();
        // (root_key, blob, flags, fingerprint) per entry, then sorted.
        let mut rows: Vec<(u64, Vec<u8>, u32, u64)> = Vec::with_capacity(self.full.entries.len());

        let opt_flags = {
            let mut f = 0;
            if self.options.icp {
                f |= flags::OPT_ICP;
            }
            if self.options.interprocedural {
                f |= flags::OPT_INTERPROCEDURAL;
            }
            if matches!(self.options.events, spo_core::EventDef::Broad) {
                f |= flags::OPT_BROAD;
            }
            f
        };

        for (sig, full_entry) in &self.full.entries {
            let intra_entry = &self.intra.entries[sig];
            let mut blob = Vec::with_capacity(64);
            codec::put_u32(&mut blob, strings.intern(sig));
            encode_policy(&mut blob, full_entry, &mut strings, &mut sets);
            encode_policy(&mut blob, intra_entry, &mut strings, &mut sets);

            let mut entry_flags = opt_flags;
            if !full_entry.has_no_checks() {
                entry_flags |= flags::HAS_CHECKS;
            }
            if full_entry.events.values().any(|p| p.may.is_empty()) {
                entry_flags |= flags::UNGUARDED_EVENT;
            }
            if !intra_entry.has_no_checks() {
                entry_flags |= flags::INTRA_HAS_CHECKS;
            }
            let fingerprint = self
                .fingerprints
                .and_then(|m| m.get(sig).copied())
                .unwrap_or(0);
            rows.push((root_key(sig), blob, entry_flags, fingerprint));
        }
        rows.sort_by_key(|r| r.0);
        if rows.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err("root-key collision between entry-point signatures".to_owned());
        }

        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(header_line().as_bytes());
        codec::put_str(&mut out, self.name);
        codec::put_str(&mut out, &options_token(self.options));
        codec::put_u64(&mut out, self.full.stats.entry_points as u64);
        codec::put_u64(&mut out, self.intra.stats.entry_points as u64);

        codec::put_u32(&mut out, strings.items.len() as u32);
        for s in &strings.items {
            codec::put_str(&mut out, s);
        }
        codec::put_u32(&mut out, sets.items.len() as u32);
        for (must, may, disjuncts) in &sets.items {
            codec::put_u32(&mut out, *must);
            codec::put_u32(&mut out, *may);
            codec::put_u32(&mut out, disjuncts.len() as u32);
            for &d in disjuncts {
                codec::put_u32(&mut out, d);
            }
        }

        codec::put_u64(&mut out, rows.len() as u64);
        let blob_total: usize = rows.iter().map(|r| r.1.len()).sum();
        if blob_total > u32::MAX as usize {
            return Err("blob region exceeds the u32 offset space".to_owned());
        }
        let mut off = 0u32;
        for (key, blob, entry_flags, fingerprint) in &rows {
            codec::put_u64(&mut out, *key);
            codec::put_u32(&mut out, off);
            codec::put_u32(&mut out, blob.len() as u32);
            codec::put_u32(&mut out, *entry_flags);
            let mut h = Fnv64::new();
            h.write(blob);
            codec::put_u64(&mut out, h.finish());
            codec::put_u64(&mut out, *fingerprint);
            off += blob.len() as u32;
        }
        codec::put_u64(&mut out, blob_total as u64);
        for (_, blob, _, _) in &rows {
            out.extend_from_slice(blob);
        }

        let mut h = Fnv64::new();
        h.write(&out);
        codec::put_u64(&mut out, h.finish());
        Ok(out)
    }
}

fn put_event_key_interned(buf: &mut Vec<u8>, key: &EventKey, strings: &mut Interner<String>) {
    match key {
        EventKey::ApiReturn => buf.push(0),
        EventKey::Native(name) => {
            buf.push(1);
            codec::put_u32(buf, strings.intern(name));
        }
        EventKey::DataRead(name) => {
            buf.push(2);
            codec::put_u32(buf, strings.intern(name));
        }
        EventKey::DataWrite(name) => {
            buf.push(3);
            codec::put_u32(buf, strings.intern(name));
        }
    }
}

fn encode_policy(
    buf: &mut Vec<u8>,
    entry: &EntryPolicy,
    strings: &mut Interner<String>,
    sets: &mut Interner<(u32, u32, Vec<u32>)>,
) {
    codec::put_u32(buf, entry.events.len() as u32);
    for (event, policy) in &entry.events {
        put_event_key_interned(buf, event, strings);
        let triple = (
            policy.must.bits().bits(),
            policy.may.bits().bits(),
            policy
                .may_paths
                .disjuncts()
                .iter()
                .map(|d| d.bits())
                .collect::<Vec<u32>>(),
        );
        codec::put_u32(buf, sets.intern(&triple));
    }
    codec::put_u32(buf, entry.event_origins.len() as u32);
    for (event, origins) in &entry.event_origins {
        put_event_key_interned(buf, event, strings);
        codec::put_u32(buf, origins.len() as u32);
        for origin in origins {
            codec::put_u32(buf, strings.intern(origin));
        }
    }
    codec::put_u32(buf, entry.check_origins.len() as u32);
    for (&check, origins) in &entry.check_origins {
        buf.push(check);
        codec::put_u32(buf, origins.len() as u32);
        for origin in origins {
            codec::put_u32(buf, strings.intern(origin));
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One offset-table row, decoded from its fixed-width record without
/// touching the blob region.
#[derive(Clone, Copy, Debug)]
pub struct Record {
    /// FNV-64 of the entry's signature ([`root_key`]).
    pub root_key: u64,
    /// Per-entry [`flags`] bits.
    pub flags: u32,
    /// FNV-64 of the entry's encoded blob — a structure/content hash that
    /// changes whenever any part of either policy changes.
    pub content_hash: u64,
    /// The entry's dependency-cone fingerprint, or 0 if none was attached
    /// at build time.
    pub fingerprint: u64,
    off: u32,
    len: u32,
}

/// Summary counters of a parsed index, for stats displays and benches.
#[derive(Clone, Copy, Debug)]
pub struct IndexStats {
    /// Entry points indexed.
    pub entries: usize,
    /// Interned strings.
    pub strings: usize,
    /// Interned distinct check sets.
    pub check_sets: usize,
    /// Total file size in bytes (including checksum).
    pub bytes: usize,
}

/// Zero-copy accessor over a parsed `spo-index/1` file.
///
/// Parsing decodes only the header and the two shared tables; the offset
/// table and blob region stay borrowed from the input. [`Self::find`] is
/// allocation-free; [`Self::decode`] allocates only the returned policies.
#[derive(Debug)]
pub struct PolicyIndex<'a> {
    library: &'a str,
    options_token: &'a str,
    entry_points_full: u64,
    entry_points_intra: u64,
    strings: Vec<&'a str>,
    sets: Vec<EventPolicy>,
    rows: &'a [u8],
    count: usize,
    blobs: &'a [u8],
    file_bytes: usize,
}

impl<'a> PolicyIndex<'a> {
    /// Parses and validates index bytes (header, whole-file checksum,
    /// table framing, offset-table sort order).
    ///
    /// # Errors
    ///
    /// Names what was wrong — version mismatch, checksum mismatch,
    /// truncation — for the caller's fall-back diagnostic.
    pub fn parse(bytes: &'a [u8]) -> Result<PolicyIndex<'a>, String> {
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("missing index version header")?;
        let header = std::str::from_utf8(&bytes[..header_end])
            .map_err(|_| "missing index version header".to_owned())?;
        match header.strip_prefix("spo-index ") {
            Some(v) if v == FORMAT_VERSION.to_string() => {}
            Some(v) => return Err(format!("index format version {v} != {FORMAT_VERSION}")),
            None => return Err("missing index version header".to_owned()),
        }
        if bytes.len() < header_end + 9 {
            return Err("truncated index (no checksum)".to_owned());
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut h = Fnv64::new();
        h.write(body);
        let want = u64::from_le_bytes(tail.try_into().map_err(|_| "truncated index")?);
        if h.finish() != want {
            return Err("index checksum mismatch (corrupt index)".to_owned());
        }

        let mut c = Cursor::at(body, header_end + 1);
        let library = c.str_ref()?;
        let options_token = c.str_ref()?;
        let entry_points_full = c.u64()?;
        let entry_points_intra = c.u64()?;

        let n_strings = c.counted(4)?;
        let mut strings = Vec::with_capacity(n_strings as usize);
        for _ in 0..n_strings {
            strings.push(c.str_ref()?);
        }
        let n_sets = c.counted(12)?;
        let mut sets = Vec::with_capacity(n_sets as usize);
        for _ in 0..n_sets {
            let must = spo_core::CheckSet::from_bits(BitSet32::from_bits(c.u32()?));
            let may = spo_core::CheckSet::from_bits(BitSet32::from_bits(c.u32()?));
            let n_disjuncts = c.counted(4)?;
            let may_paths: Dnf = (0..n_disjuncts)
                .map(|_| c.u32().map(BitSet32::from_bits))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .collect();
            sets.push(EventPolicy {
                must,
                may,
                may_paths,
            });
        }

        let count = c.counted64(ROW_BYTES)? as usize;
        let rows = c.take(count * ROW_BYTES)?;
        let blob_len = c.counted64(1)? as usize;
        let blobs = c.take(blob_len)?;
        if c.pos() != body.len() {
            return Err("trailing bytes after index blob region".to_owned());
        }

        let index = PolicyIndex {
            library,
            options_token,
            entry_points_full,
            entry_points_intra,
            strings,
            sets,
            rows,
            count,
            blobs,
            file_bytes: bytes.len(),
        };
        // Sorted, duplicate-free keys are what make `find` sound.
        for i in 1..index.count {
            if index.row(i - 1).root_key >= index.row(i).root_key {
                return Err("index offset table is not sorted by root key".to_owned());
            }
        }
        Ok(index)
    }

    /// The library name the index was compiled from.
    pub fn library(&self) -> &'a str {
        self.library
    }

    /// The cache-compatible options token the index was compiled under.
    /// Consumers must match it against their requested options before
    /// serving answers from the index.
    pub fn options_token(&self) -> &'a str {
        self.options_token
    }

    /// Number of indexed entry points.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` if the index holds no entry points.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Summary counters.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            entries: self.count,
            strings: self.strings.len(),
            check_sets: self.sets.len(),
            bytes: self.file_bytes,
        }
    }

    fn row(&self, i: usize) -> Record {
        let r = &self.rows[i * ROW_BYTES..(i + 1) * ROW_BYTES];
        let u32_at = |o: usize| u32::from_le_bytes([r[o], r[o + 1], r[o + 2], r[o + 3]]);
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&r[o..o + 8]);
            u64::from_le_bytes(b)
        };
        Record {
            root_key: u64_at(0),
            off: u32_at(8),
            len: u32_at(12),
            flags: u32_at(16),
            content_hash: u64_at(20),
            fingerprint: u64_at(28),
        }
    }

    /// Binary search over the offset table by root key. Allocation-free.
    pub fn find(&self, key: u64) -> Option<Record> {
        let mut lo = 0usize;
        let mut hi = self.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let rec = self.row(mid);
            match rec.root_key.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(rec),
            }
        }
        None
    }

    /// Iterates every record in root-key order.
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.count).map(|i| self.row(i))
    }

    fn blob_of(&self, rec: Record) -> Result<&'a [u8], String> {
        let start = rec.off as usize;
        let end = start
            .checked_add(rec.len as usize)
            .filter(|&e| e <= self.blobs.len())
            .ok_or("entry blob out of bounds")?;
        Ok(&self.blobs[start..end])
    }

    fn string(&self, id: u32) -> Result<&'a str, String> {
        self.strings
            .get(id as usize)
            .copied()
            .ok_or_else(|| format!("string id {id} out of range"))
    }

    fn event_key(&self, c: &mut Cursor<'a>) -> Result<EventKey, String> {
        match c.u8()? {
            0 => Ok(EventKey::ApiReturn),
            1 => Ok(EventKey::Native(self.string(c.u32()?)?.to_owned())),
            2 => Ok(EventKey::DataRead(self.string(c.u32()?)?.to_owned())),
            3 => Ok(EventKey::DataWrite(self.string(c.u32()?)?.to_owned())),
            t => Err(format!("unknown event tag {t}")),
        }
    }

    /// The signature a record indexes, read from the first field of its
    /// blob without decoding the policies.
    pub fn signature_of(&self, rec: Record) -> Result<&'a str, String> {
        let mut c = Cursor::new(self.blob_of(rec)?);
        self.string(c.u32()?)
    }

    fn decode_policy(&self, sig: &str, c: &mut Cursor<'a>) -> Result<EntryPolicy, String> {
        let mut entry = EntryPolicy::new(sig.to_owned());
        for _ in 0..c.counted(5)? {
            let event = self.event_key(c)?;
            let set_id = c.u32()?;
            let policy = self
                .sets
                .get(set_id as usize)
                .ok_or_else(|| format!("check-set id {set_id} out of range"))?;
            entry.events.insert(event, policy.clone());
        }
        for _ in 0..c.counted(5)? {
            let event = self.event_key(c)?;
            let origins = (0..c.counted(4)?)
                .map(|_| Ok(self.string(c.u32()?)?.to_owned()))
                .collect::<Result<_, String>>()?;
            entry.event_origins.insert(event, origins);
        }
        for _ in 0..c.counted(5)? {
            let check = c.u8()?;
            let origins = (0..c.counted(4)?)
                .map(|_| Ok(self.string(c.u32()?)?.to_owned()))
                .collect::<Result<_, String>>()?;
            entry.check_origins.insert(check, origins);
        }
        Ok(entry)
    }

    /// Decodes a record into `(signature, full policy, intra policy)`.
    pub fn decode(&self, rec: Record) -> Result<(String, EntryPolicy, EntryPolicy), String> {
        let blob = self.blob_of(rec)?;
        let mut c = Cursor::new(blob);
        let sig = self.string(c.u32()?)?.to_owned();
        let full = self.decode_policy(&sig, &mut c)?;
        let intra = self.decode_policy(&sig, &mut c)?;
        if c.pos() != blob.len() {
            return Err("trailing bytes in entry blob".to_owned());
        }
        Ok((sig, full, intra))
    }

    /// Looks a signature up and renders its policy block exactly as `spo
    /// analyze` and the daemon do (via [`spo_core::render_entry`]; an
    /// entry with no checks renders as the empty string). `Ok(None)` means
    /// the entry point is not in the index.
    pub fn query(&self, signature: &str) -> Result<Option<String>, String> {
        let Some(rec) = self.find(root_key(signature)) else {
            return Ok(None);
        };
        if self.signature_of(rec)? != signature {
            return Ok(None);
        }
        let (sig, full, _) = self.decode(rec)?;
        Ok(Some(render_entry(&sig, &full)))
    }

    /// Renders the full library listing exactly as `spo analyze` does
    /// (via [`spo_core::render_analysis`]).
    ///
    /// # Errors
    ///
    /// Propagates blob decode failures.
    pub fn render_full(&self) -> Result<String, String> {
        let (full, _) = self.to_libraries()?;
        Ok(render_analysis(&full))
    }

    /// Reconstructs the `(full, intra)` [`LibraryPolicies`] pair the index
    /// was compiled from — what diffing and the daemon's warm path need.
    /// Degraded maps are empty by construction (degraded analyses are
    /// rejected at build time).
    pub fn to_libraries(&self) -> Result<(LibraryPolicies, LibraryPolicies), String> {
        let mut full = LibraryPolicies {
            name: self.library.to_owned(),
            entries: BTreeMap::new(),
            stats: AnalysisStats {
                entry_points: self.entry_points_full as usize,
                ..AnalysisStats::default()
            },
            degraded: BTreeMap::new(),
        };
        let mut intra = LibraryPolicies {
            name: self.library.to_owned(),
            entries: BTreeMap::new(),
            stats: AnalysisStats {
                entry_points: self.entry_points_intra as usize,
                ..AnalysisStats::default()
            },
            degraded: BTreeMap::new(),
        };
        for rec in self.records() {
            let (sig, f, i) = self.decode(rec)?;
            full.entries.insert(sig.clone(), f);
            intra.entries.insert(sig, i);
        }
        Ok((full, intra))
    }
}

/// Composes the analysis-path pairwise diff from two reconstructed
/// `(full, intra)` pairs: differences over the full policies, root-cause
/// classification against the intra ablation's keys, grouped and rendered
/// via [`spo_core::render_reports`]. Returns the report and whether any
/// difference was found — the same composition (and therefore the same
/// bytes and findings bit) as the engine's `compare_all` and the daemon's
/// diff path.
pub fn diff_rendered(
    left_full: &LibraryPolicies,
    left_intra: &LibraryPolicies,
    right_full: &LibraryPolicies,
    right_intra: &LibraryPolicies,
) -> (String, bool) {
    let diff = spo_core::diff_libraries(left_full, right_full);
    let intra_keys = spo_core::root_keys(&spo_core::diff_libraries(left_intra, right_intra));
    let groups = spo_core::group_differences(&diff, &intra_keys);
    let report = spo_core::render_reports(&diff, &groups);
    let findings = !groups.is_empty();
    (report, findings)
}

/// Reads an index file in one `read()`, with the `index.read.bitflip`
/// chaos site probed between the read and the caller's checksum verify —
/// an injected flip must surface as a typed [`PolicyIndex::parse`]
/// failure, never a wrong answer.
///
/// # Errors
///
/// Propagates the underlying IO error.
pub fn read_index_file(path: &Path) -> std::io::Result<Vec<u8>> {
    read_index_file_with(path, &spo_chaos::current())
}

/// [`read_index_file`] with an explicit fault plan (tests inject without
/// touching the process-wide plan).
///
/// # Errors
///
/// Propagates the underlying IO error.
pub fn read_index_file_with(path: &Path, plan: &spo_chaos::FaultPlan) -> std::io::Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    if !bytes.is_empty() && plan.should_fire(spo_chaos::sites::INDEX_READ_BITFLIP) {
        let pos = plan.amount(spo_chaos::sites::INDEX_READ_BITFLIP, bytes.len() as u64) as usize;
        bytes[pos] ^= 0x01;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_core::{Check, CheckSet};

    fn policy(must: &[Check], may_paths: &[&[Check]]) -> EventPolicy {
        let must: CheckSet = must.iter().copied().collect();
        let paths: Dnf = may_paths
            .iter()
            .map(|p| p.iter().copied().collect::<CheckSet>().bits())
            .collect();
        EventPolicy {
            must,
            may: CheckSet::from_bits(paths.flat_union()),
            may_paths: paths,
        }
    }

    fn fixture() -> (LibraryPolicies, LibraryPolicies) {
        let mut full = LibraryPolicies {
            name: "jdk".into(),
            ..Default::default()
        };
        let mut intra = LibraryPolicies {
            name: "jdk".into(),
            ..Default::default()
        };
        for (sig, checked) in [
            ("Net.connect(Addr)", true),
            ("Net.accept()", true),
            ("Util.length()", false),
        ] {
            let mut f = EntryPolicy::new(sig.into());
            let mut i = EntryPolicy::new(sig.into());
            if checked {
                f.events.insert(
                    EventKey::Native("connect0".into()),
                    policy(&[Check::Connect], &[&[Check::Connect], &[Check::Accept]]),
                );
                f.events.insert(EventKey::ApiReturn, EventPolicy::default());
                f.event_origins.insert(
                    EventKey::Native("connect0".into()),
                    ["Net.impl".to_owned()].into(),
                );
                f.check_origins.insert(
                    Check::Connect.index(),
                    ["Net.guard".to_owned(), "Net.impl".to_owned()].into(),
                );
                i.events
                    .insert(EventKey::ApiReturn, policy(&[], &[&[Check::Connect]]));
            } else {
                f.events.insert(EventKey::ApiReturn, EventPolicy::default());
                i.events.insert(EventKey::ApiReturn, EventPolicy::default());
            }
            full.entries.insert(sig.into(), f);
            intra.entries.insert(sig.into(), i);
        }
        full.stats.entry_points = full.entries.len();
        intra.stats.entry_points = intra.entries.len();
        (full, intra)
    }

    fn build(full: &LibraryPolicies, intra: &LibraryPolicies) -> Vec<u8> {
        IndexBuilder::new("jdk", &AnalysisOptions::default(), full, intra)
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_reconstructs_libraries() {
        let (full, intra) = fixture();
        let bytes = build(&full, &intra);
        let index = PolicyIndex::parse(&bytes).unwrap();
        assert_eq!(index.library(), "jdk");
        assert_eq!(index.len(), 3);
        let (rfull, rintra) = index.to_libraries().unwrap();
        assert_eq!(rfull.entries, full.entries);
        assert_eq!(rintra.entries, intra.entries);
        assert_eq!(rfull.stats.entry_points, 3);
        assert_eq!(render_analysis(&rfull), render_analysis(&full));
    }

    #[test]
    fn query_matches_render_entry() {
        let (full, intra) = fixture();
        let bytes = build(&full, &intra);
        let index = PolicyIndex::parse(&bytes).unwrap();
        for (sig, entry) in &full.entries {
            let got = index.query(sig).unwrap().unwrap();
            assert_eq!(got, render_entry(sig, entry));
        }
        assert_eq!(index.query("No.such()").unwrap(), None);
    }

    #[test]
    fn check_sets_and_strings_are_interned() {
        let (full, intra) = fixture();
        let bytes = build(&full, &intra);
        let index = PolicyIndex::parse(&bytes).unwrap();
        let stats = index.stats();
        // Two identical checked entries share one checked set; plus the
        // empty set and the intra set: far fewer than one per event.
        assert!(stats.check_sets <= 3, "check sets: {}", stats.check_sets);
        // "Net.impl" appears in two entries' origins but is stored once.
        let occurrences = index.strings.iter().filter(|s| **s == "Net.impl").count();
        assert_eq!(occurrences, 1);
    }

    #[test]
    fn flags_reflect_policies_without_decoding() {
        let (full, intra) = fixture();
        let bytes = build(&full, &intra);
        let index = PolicyIndex::parse(&bytes).unwrap();
        let rec = index.find(root_key("Net.connect(Addr)")).unwrap();
        assert!(rec.flags & flags::HAS_CHECKS != 0);
        assert!(rec.flags & flags::UNGUARDED_EVENT != 0); // bare ApiReturn
        assert!(rec.flags & flags::INTRA_HAS_CHECKS != 0);
        assert!(rec.flags & flags::OPT_ICP != 0);
        let unchecked = index.find(root_key("Util.length()")).unwrap();
        assert!(unchecked.flags & flags::HAS_CHECKS == 0);
    }

    #[test]
    fn degraded_analysis_is_rejected() {
        let (mut full, intra) = fixture();
        full.degraded.insert(
            "Net.connect(Addr)".into(),
            spo_guard::Diagnostic {
                phase: spo_guard::Phase::Analysis,
                root: "Net.connect(Addr)".into(),
                cause: spo_guard::Cause::Panic,
                severity: spo_guard::Severity::Warning,
                message: "boom".into(),
            },
        );
        let err = IndexBuilder::new("jdk", &AnalysisOptions::default(), &full, &intra)
            .build()
            .unwrap_err();
        assert!(err.contains("degraded"), "{err}");
    }

    #[test]
    fn corruption_degrades_not_wrong() {
        let (full, intra) = fixture();
        let bytes = build(&full, &intra);
        // Bitflip anywhere in the body: checksum mismatch.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(PolicyIndex::parse(&flipped)
            .unwrap_err()
            .contains("checksum"));
        // Truncation: missing checksum or framing damage.
        assert!(PolicyIndex::parse(&bytes[..bytes.len() - 3]).is_err());
        assert!(PolicyIndex::parse(&bytes[..10]).is_err());
        // Version bump: clean version error, no decode attempt.
        let mut bumped = bytes.clone();
        bumped[10] = b'9'; // "spo-index 1\n" -> "spo-index 9\n"
        assert!(PolicyIndex::parse(&bumped).unwrap_err().contains("version"));
        // Garbage header.
        assert!(PolicyIndex::parse(b"not an index\n").is_err());
    }

    #[test]
    fn chaos_bitflip_surfaces_as_parse_error() {
        let (full, intra) = fixture();
        let bytes = build(&full, &intra);
        let dir = std::env::temp_dir().join(format!("spo-index-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(INDEX_FILE);
        std::fs::write(&path, &bytes).unwrap();
        let plan = spo_chaos::FaultPlan::seeded(7).site_once(spo_chaos::sites::INDEX_READ_BITFLIP);
        let read = read_index_file_with(&path, &plan).unwrap();
        assert_ne!(read, bytes, "the chaos site must have flipped a byte");
        assert!(PolicyIndex::parse(&read).is_err());
        // The second read is clean (site fires once) and parses.
        let read = read_index_file_with(&path, &plan).unwrap();
        assert_eq!(read, bytes);
        assert!(PolicyIndex::parse(&read).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_rendered_matches_manual_composition() {
        let (full_a, intra_a) = fixture();
        let (mut full_b, intra_b) = fixture();
        full_b.name = "harmony".into();
        // Drop a check on one side to force a difference.
        full_b
            .entries
            .get_mut("Net.accept()")
            .unwrap()
            .events
            .insert(EventKey::Native("connect0".into()), EventPolicy::default());
        let (report, findings) = diff_rendered(&full_a, &intra_a, &full_b, &intra_b);
        assert!(findings);
        assert!(report.contains("jdk vs harmony"), "{report}");
    }
}
