//! Shared little-endian codec primitives for the length-prefixed binary
//! packs (`spo-cache`'s `policies.spc` and this crate's `policies.spi`).
//!
//! Reading is built on [`Cursor`], a bounded reader whose every method
//! fails soundly on truncation, and on *checked counted reads*
//! ([`Cursor::counted`]): a decoded element count is validated against the
//! bytes actually remaining **before** any allocation or slicing, so a
//! length field truncated or corrupted into a huge value degrades to a
//! decode error instead of a capacity panic or an over-reserve.

use spo_core::EventKey;

/// Appends a little-endian u32.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string (u32 length + bytes).
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends an [`EventKey`] with its name inlined: u8 tag (0 = ApiReturn,
/// 1 = Native, 2 = DataRead, 3 = DataWrite) + [`put_str`] name for every
/// tag but 0. This is the cache-blob encoding; the index interns names
/// and encodes keys itself.
pub fn put_event_key(buf: &mut Vec<u8>, key: &EventKey) {
    match key {
        EventKey::ApiReturn => buf.push(0),
        EventKey::Native(name) => {
            buf.push(1);
            put_str(buf, name);
        }
        EventKey::DataRead(name) => {
            buf.push(2);
            put_str(buf, name);
        }
        EventKey::DataWrite(name) => {
            buf.push(3);
            put_str(buf, name);
        }
    }
}

/// Bounded reader over a byte slice; every method fails soundly on
/// truncation and nothing is allocated before its length is validated.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    /// A cursor at byte offset `pos` (for skipping a text header).
    pub fn at(bytes: &'a [u8], pos: usize) -> Cursor<'a> {
        Cursor { bytes, pos }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Takes the next `n` bytes, or fails if fewer remain.
    ///
    /// # Errors
    ///
    /// `"truncated entry"` on overrun.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("truncated entry")?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().map_err(|_| "truncated entry")?,
        ))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().map_err(|_| "truncated entry")?,
        ))
    }

    /// Reads a u32 element count and validates `count * min_item_bytes`
    /// against the bytes remaining **before** the caller allocates or
    /// loops — the checked-read guard for length-prefixed collections.
    /// `min_item_bytes` is the smallest possible encoding of one element,
    /// so the check is a sound lower bound.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an impossible count.
    pub fn counted(&mut self, min_item_bytes: usize) -> Result<u32, String> {
        let n = self.u32()?;
        self.check_count(n as u64, min_item_bytes)?;
        Ok(n)
    }

    /// [`Self::counted`] for u64 counts (pack-level entry counts).
    ///
    /// # Errors
    ///
    /// Fails on truncation or an impossible count.
    pub fn counted64(&mut self, min_item_bytes: usize) -> Result<u64, String> {
        let n = self.u64()?;
        self.check_count(n, min_item_bytes)?;
        Ok(n)
    }

    fn check_count(&self, n: u64, min_item_bytes: usize) -> Result<(), String> {
        let need = n.checked_mul(min_item_bytes as u64);
        match need {
            Some(need) if need <= self.remaining() as u64 => Ok(()),
            _ => Err(format!(
                "impossible count {n} (needs ≥ {} bytes, {} remain)",
                need.map_or("overflowing".to_owned(), |b| b.to_string()),
                self.remaining()
            )),
        }
    }

    /// Reads a length-prefixed UTF-8 string, owned.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, String> {
        Ok(self.str_ref()?.to_owned())
    }

    /// Reads a length-prefixed UTF-8 string borrowed from the underlying
    /// bytes — the zero-copy variant the index reader uses.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn str_ref(&mut self) -> Result<&'a str, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| "invalid UTF-8 in entry".to_owned())
    }

    /// Reads an [`EventKey`] in the inlined-name encoding of
    /// [`put_event_key`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or an unknown tag.
    pub fn event_key(&mut self) -> Result<EventKey, String> {
        match self.u8()? {
            0 => Ok(EventKey::ApiReturn),
            1 => Ok(EventKey::Native(self.str()?)),
            2 => Ok(EventKey::DataRead(self.str()?)),
            3 => Ok(EventKey::DataWrite(self.str()?)),
            t => Err(format!("unknown event tag {t}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_strings() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "Class.method(int)");
        put_event_key(&mut buf, &EventKey::Native("connect0".into()));
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32().unwrap(), 7);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.str().unwrap(), "Class.method(int)");
        assert_eq!(c.event_key().unwrap(), EventKey::Native("connect0".into()));
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn truncation_fails_soundly() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut c = Cursor::new(&buf[..6]); // length says 5, only 2 remain
        assert!(c.str().is_err());
    }

    #[test]
    fn counted_rejects_impossible_counts_before_allocation() {
        // A corrupted count of ~4 billion items in a 12-byte buffer must
        // fail the guard, not reach a collect() that pre-reserves.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u64(&mut buf, 0);
        let mut c = Cursor::new(&buf);
        let err = c.counted(4).unwrap_err();
        assert!(err.contains("impossible count"), "{err}");

        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // × any min size overflows u64
        let mut c = Cursor::new(&buf);
        assert!(c.counted64(12).is_err());

        // A plausible count passes and the items read back.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        put_u32(&mut buf, 10);
        put_u32(&mut buf, 20);
        let mut c = Cursor::new(&buf);
        let n = c.counted(4).unwrap();
        let items: Vec<u32> = (0..n).map(|_| c.u32().unwrap()).collect();
        assert_eq!(items, [10, 20]);
    }
}
