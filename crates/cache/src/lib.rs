//! # spo-cache — persistent incremental summary cache
//!
//! The paper's Phase 2 (§5) makes whole-library policy extraction
//! tractable with *in-memory* method-summary memoization; this crate
//! extends the idea across process boundaries. Every API entry point's
//! finished [`EntryPolicy`] is stored on disk together with its
//! *dependency cone* and a key derived from the content of everything its
//! analysis could observe, so a later run — after an edit — re-analyzes
//! only the roots whose observable content changed and warm-starts the
//! rest, byte-identical to a cold run.
//!
//! ## Key derivation
//!
//! A root's cached policy is a pure function of:
//!
//! 1. the **cache format version** ([`FORMAT_VERSION`]) — bumped whenever
//!    the serialization or the analysis semantics change;
//! 2. the **analysis options** that affect results (`icp`, the event
//!    definition, interprocedurality — the memo scope is deliberately
//!    excluded because results are memo-invariant);
//! 3. the program's **structure salt** ([`spo_jir::structure_hash`]): every
//!    class declaration without bodies. Hierarchy-based resolution,
//!    devirtualization, and private-field classification read exactly this
//!    surface, so a structural edit conservatively invalidates *every*
//!    root, while a body edit invalidates none of it;
//! 4. the root's **dependency cone**: the sorted content hashes of every
//!    method reachable from the root in the call graph
//!    ([`spo_resolve::CallGraph`]) — an edit to a method body invalidates
//!    exactly the roots whose cones contain it.
//!
//! ## Warm-path validation without a call graph
//!
//! Re-deriving every cone on every warm run would cost a full call-graph
//! construction — a large fraction of a whole cold analysis. Instead, each
//! stored entry carries its cone as a list of [*method identity
//! hashes*](spo_jir::method_identity_hash), and a warm run validates it
//! against a [`ContentTable`]: one pass over the program computing each
//! method's identity and content hash. Re-keying the *stored* cone with
//! *current* content hashes is sound because the cone itself is a pure
//! function of the structure salt and the member bodies: if every stored
//! member's body and the class structure are unchanged, resolution
//! reproduces exactly the same cone, and if any of them changed, the
//! recomputed key differs and the root misses (the follow-up cold
//! analysis stores the new cone). Only missed roots ever need the call
//! graph — [`CacheKeyer`] is built over just those.
//!
//! All hashing is [`spo_jir::Fnv64`]: seedless, platform-independent, and
//! stable across parses (it hashes resolved strings and structural tags,
//! never interned ids).
//!
//! ## Storage layout
//!
//! One *pack file* per cache directory (`policies.spc`): a text version
//! header line followed by length-prefixed binary entries, each the
//! compact encoding of one root's `(signature, key, cone, EntryPolicy)`,
//! addressed by a *root key* ([`PolicyCache::root_key`]: library name +
//! root identity, so implementations sharing signatures coexist in one
//! directory). The pack is loaded once at [`PolicyCache::open`]; lookups
//! and stores then touch only memory, and [`PolicyCache::flush`] rewrites
//! the pack atomically (temp file + `rename`) when anything changed. The
//! warm path of a run with thousands of roots therefore costs one
//! sequential read and at most one sequential write — never a syscall per
//! root.
//!
//! ## Corruption safety
//!
//! A cache can be truncated, corrupted, or written by a different version
//! at any time; none of that may panic or change results. The pack header
//! and every entry's framing are validated at load, and each entry's
//! content is re-validated at lookup; any mismatch degrades to a *cold*
//! analysis plus a [`Diagnostic`] on the `cache` phase — warnings only,
//! never an error, never an exit-code change. The next flush rewrites the
//! pack from the healthy in-memory store, healing the corruption.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use spo_chaos::FaultPlan;
use spo_core::{AnalysisOptions, EntryPolicy, EventPolicy};
use spo_dataflow::{BitSet32, Dnf};
use spo_guard::{Cause, Diagnostic, Phase, Severity};
use spo_jir::{
    method_content_hash, method_identity_hash, structure_hash, Fnv64, MethodId, Program,
};
use spo_obs::trace;
use spo_resolve::{CallGraph, Hierarchy};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// The on-disk format version. Any change to the entry serialization, the
/// key derivation, or the analysis semantics the cached policies depend on
/// must bump this; old packs then read as version mismatches and fall
/// back to cold analysis.
pub const FORMAT_VERSION: u32 = 3;

/// Name of the pack file inside the cache directory.
pub const PACK_FILE: &str = "policies.spc";

/// Folds one cone's sorted member content hashes into a cache key.
fn fold_key(opts: &str, salt: u64, sorted_contents: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(FORMAT_VERSION as u64);
    h.write_str(opts);
    h.write_u64(salt);
    for &content in sorted_contents {
        h.write_u64(content);
    }
    h.finish()
}

/// Renders the result-affecting analysis options into the key. The memo
/// scope is excluded: summaries are memo-invariant, so one cache serves
/// every memoization configuration. Shared with the compiled policy
/// index so both identify an options configuration by the same token.
fn options_token(options: &AnalysisOptions) -> String {
    spo_index::options_token(options)
}

/// Current identity → content hashes of every method in one program, plus
/// the structure salt and options token — everything needed to re-key a
/// *stored* cone without building a call graph.
pub struct ContentTable {
    opts: String,
    salt: u64,
    content_by_identity: HashMap<u64, u64>,
}

impl ContentTable {
    /// Hashes every method of `program` once (identity and content).
    pub fn new(program: &Program, options: &AnalysisOptions) -> ContentTable {
        ContentTable {
            opts: options_token(options),
            salt: structure_hash(program),
            content_by_identity: program
                .all_methods()
                .map(|(id, _)| {
                    (
                        method_identity_hash(program, id),
                        method_content_hash(program, id),
                    )
                })
                .collect(),
        }
    }

    /// Re-keys a stored cone against the current program: `None` if any
    /// member no longer exists (the key then cannot match and the root
    /// must re-analyze).
    pub fn key_of_cone(&self, cone: &[u64]) -> Option<u64> {
        let mut contents: Vec<u64> = cone
            .iter()
            .map(|identity| self.content_by_identity.get(identity).copied())
            .collect::<Option<_>>()?;
        contents.sort_unstable();
        Some(fold_key(&self.opts, self.salt, &contents))
    }
}

/// Derives the cache key and cone of each given root from the call graph —
/// the *store-path* keyer, built over just the roots that missed (the
/// warm path validates stored cones with a [`ContentTable`] instead).
pub struct CacheKeyer {
    roots: BTreeMap<MethodId, (u64, Vec<u64>)>,
}

impl CacheKeyer {
    /// Computes the key and sorted cone identity list for every root in
    /// `roots` over `program`.
    pub fn new(program: &Program, roots: &[MethodId], options: &AnalysisOptions) -> CacheKeyer {
        let hierarchy = Hierarchy::new(program);
        let cg = CallGraph::build(&hierarchy, roots.to_vec());
        let salt = structure_hash(program);
        let opts = options_token(options);
        // Dense re-indexing of the reachable set, then one hash pair per
        // reachable method and an epoch-stamped DFS per root with no
        // allocation inside the loop (cones overlap heavily, so per-root
        // ordered sets would allocate far more than the graph itself).
        let reachable: Vec<MethodId> = cg.reachable().collect();
        let index: HashMap<MethodId, u32> = reachable
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i as u32))
            .collect();
        let adj: Vec<Vec<u32>> = reachable
            .iter()
            .map(|&m| cg.callees(m).iter().map(|c| index[c]).collect())
            .collect();
        let contents: Vec<u64> = reachable
            .iter()
            .map(|&m| method_content_hash(program, m))
            .collect();
        let identities: Vec<u64> = reachable
            .iter()
            .map(|&m| method_identity_hash(program, m))
            .collect();
        let mut keys = BTreeMap::new();
        let mut mark: Vec<u32> = vec![u32::MAX; reachable.len()];
        let mut stack: Vec<u32> = Vec::new();
        for (epoch, &root) in roots.iter().enumerate() {
            let epoch = epoch as u32;
            let mut cone_contents: Vec<u64> = Vec::new();
            let mut cone_identities: Vec<u64> = Vec::new();
            stack.clear();
            let r = index[&root];
            mark[r as usize] = epoch;
            stack.push(r);
            while let Some(m) = stack.pop() {
                cone_contents.push(contents[m as usize]);
                cone_identities.push(identities[m as usize]);
                for &callee in &adj[m as usize] {
                    if mark[callee as usize] != epoch {
                        mark[callee as usize] = epoch;
                        stack.push(callee);
                    }
                }
            }
            cone_contents.sort_unstable();
            cone_identities.sort_unstable();
            let key = fold_key(&opts, salt, &cone_contents);
            keys.insert(root, (key, cone_identities));
        }
        CacheKeyer { roots: keys }
    }

    /// The cache key of `root` (`None` if it was not in the constructed
    /// root set).
    pub fn key(&self, root: MethodId) -> Option<u64> {
        self.roots.get(&root).map(|(key, _)| *key)
    }

    /// The sorted cone identity list of `root` (`None` if it was not in
    /// the constructed root set).
    pub fn cone(&self, root: MethodId) -> Option<&[u64]> {
        self.roots.get(&root).map(|(_, cone)| cone.as_slice())
    }
}

/// Running counters of one cache's activity in this process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups the cache could not answer — no entry for the root, or the
    /// stored cone re-keyed differently (an edit) — so the root analyzed
    /// cold.
    pub misses: u64,
    /// Unusable cache state rejected (corrupt or version-bumped pack,
    /// undecodable entry) — the affected roots fell back to cold analysis.
    pub invalidated: u64,
    /// Total encoded entry bytes read from and written to the cache.
    pub bytes: u64,
    /// Flush attempts repeated after a transient write error (interrupted
    /// syscall or injected chaos fault) before the pack landed or the
    /// flush gave up.
    pub flush_retries: u64,
}

/// Flush attempts before a persistently failing pack write degrades to a
/// diagnostic (the first attempt plus bounded retries of transient
/// errors).
pub const FLUSH_ATTEMPTS: u32 = 3;

/// Whether an IO error is worth retrying: interrupted syscalls and
/// timeout-shaped kinds, which is also the shape `spo-chaos` gives its
/// injected transient faults.
fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// In-memory view of the pack: encoded entry blobs by root key, plus
/// whether anything diverged from the on-disk pack since open/flush.
#[derive(Debug, Default)]
struct Store {
    entries: HashMap<u64, Vec<u8>>,
    dirty: bool,
}

/// A persistent store of per-root policy entries (one pack file per
/// directory).
///
/// All operations are infallible from the caller's perspective: I/O and
/// decode failures surface as [`Diagnostic`]s (drained via
/// [`PolicyCache::take_diagnostics`]) and cold-path fallbacks, never as
/// panics or `Result`s in the analysis hot path.
#[derive(Debug)]
pub struct PolicyCache {
    dir: PathBuf,
    // Read-mostly once warm: a resident process (the serve daemon) shares
    // one handle across many concurrent sessions whose lookups vastly
    // outnumber write-backs, so reads take a shared lock and only
    // store/flush/invalidation take the exclusive one.
    store: RwLock<Store>,
    stats: Mutex<CacheStats>,
    diagnostics: Mutex<Vec<Diagnostic>>,
    // Captured from the process-wide spo-chaos plan at open (and
    // overridable per handle for tests): fault sites in the flush path
    // draw from this plan. Disabled plans cost one branch per probe.
    chaos: Mutex<FaultPlan>,
}

impl PolicyCache {
    /// Opens the cache directory (creating it if needed) and loads the
    /// pack file. A missing pack is an empty cache; a corrupt, truncated,
    /// or version-mismatched pack degrades to an empty cache with a
    /// diagnostic — the next [`PolicyCache::flush`] heals it.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be created —
    /// the one cache failure that is a usage error rather than a
    /// degradation.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<PolicyCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let cache = PolicyCache {
            dir,
            store: RwLock::new(Store::default()),
            stats: Mutex::new(CacheStats::default()),
            diagnostics: Mutex::new(Vec::new()),
            chaos: Mutex::new(spo_chaos::current()),
        };
        let path = cache.pack_path();
        match std::fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                cache.lock_stats().invalidated += 1;
                cache.diag(PACK_FILE, format!("{}: {e}", path.display()));
            }
            Ok(bytes) => match parse_pack(&bytes) {
                Ok(entries) => cache.lock_store().entries = entries,
                Err(why) => {
                    cache.lock_stats().invalidated += 1;
                    cache.diag(
                        PACK_FILE,
                        format!("{}: {why}; falling back to cold analysis", path.display()),
                    );
                }
            },
        }
        Ok(cache)
    }

    /// The address of one root's entry: library name (so implementations
    /// with overlapping signatures coexist in one directory) + the root's
    /// [identity hash](spo_jir::method_identity_hash).
    pub fn root_key(library: &str, identity: u64) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(library);
        h.write_u64(identity);
        h.finish()
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn pack_path(&self) -> PathBuf {
        self.dir.join(PACK_FILE)
    }

    fn read_store(&self) -> std::sync::RwLockReadGuard<'_, Store> {
        self.store.read().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_store(&self) -> std::sync::RwLockWriteGuard<'_, Store> {
        self.store.write().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, CacheStats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn diag(&self, unit: &str, message: String) {
        self.diagnostics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Diagnostic::cache_fallback(unit.to_owned(), message));
    }

    fn chaos_diag(&self, message: String) {
        self.diagnostics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Diagnostic {
                severity: Severity::Warning,
                phase: Phase::Chaos,
                root: PACK_FILE.to_owned(),
                cause: Cause::Chaos,
                message,
            });
    }

    /// Replaces the fault plan this handle draws injected faults from
    /// (tests arm a plan without touching the process-wide one).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.chaos.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    /// Looks up the policy stored under `root_key`, validating the stored
    /// cone against `table`. Returns the stored signature and policy on a
    /// hit. A stale entry (its cone re-keys differently — an edit) is a
    /// plain miss; an undecodable entry counts as invalidated, is dropped
    /// from the store (healed on flush), and emits a diagnostic. Either
    /// way the caller analyzes cold.
    pub fn lookup(&self, root_key: u64, table: &ContentTable) -> Option<(String, EntryPolicy)> {
        // The hot path (hit, miss, stale) only reads, so concurrent
        // sessions validate under the shared lock; the exclusive lock is
        // taken only to drop an undecodable entry below.
        let store = self.read_store();
        let Some(blob) = store.entries.get(&root_key) else {
            drop(store);
            self.lock_stats().misses += 1;
            trace::instant_now("cache.miss", "cache");
            return None;
        };
        match decode_blob(blob, table) {
            Ok(Some((signature, entry))) => {
                let len = blob.len() as u64;
                drop(store);
                let mut stats = self.lock_stats();
                stats.hits += 1;
                stats.bytes += len;
                drop(stats);
                trace::instant_now("cache.hit", "cache");
                Some((signature, entry))
            }
            Ok(None) => {
                // Stale: the cone re-keyed differently under the current
                // program. The follow-up store overwrites this entry.
                drop(store);
                self.lock_stats().misses += 1;
                trace::instant_now("cache.stale", "cache");
                None
            }
            Err(why) => {
                drop(store);
                // Re-acquire exclusively; removal is idempotent if another
                // session already dropped the same corrupt entry.
                let mut store = self.lock_store();
                if store.entries.remove(&root_key).is_some() {
                    store.dirty = true;
                }
                drop(store);
                self.lock_stats().invalidated += 1;
                trace::instant_now("cache.invalidated", "cache");
                self.diag(
                    &format!("{root_key:016x}"),
                    format!("entry {root_key:016x}: {why}; falling back to cold analysis"),
                );
                None
            }
        }
    }

    /// Stores `entry` with its `key` and cone under `root_key` in memory;
    /// [`PolicyCache::flush`] persists it.
    pub fn store(&self, root_key: u64, key: u64, cone: &[u64], entry: &EntryPolicy) {
        let blob = encode_blob(key, cone, entry);
        self.lock_stats().bytes += blob.len() as u64;
        let mut store = self.lock_store();
        store.entries.insert(root_key, blob);
        store.dirty = true;
    }

    /// Writes the pack file atomically and durably if anything changed
    /// since open or the last flush: temp file + `sync_all`, atomic
    /// `rename` over the pack, then a best-effort `sync_all` on the
    /// directory so the rename itself survives a crash. Transient errors
    /// (interrupted syscalls, injected chaos faults) are retried up to
    /// [`FLUSH_ATTEMPTS`] times with a short backoff; persistent failures
    /// degrade to a diagnostic — the run's results are already computed
    /// and unaffected, and the next flush retries from scratch because
    /// the store stays dirty.
    pub fn flush(&self) {
        let mut store = self.lock_store();
        if !store.dirty {
            return;
        }
        let _trace = trace::span_now("cache.flush", "cache");
        let pack = render_pack(&store.entries);
        let path = self.pack_path();
        // pid + per-process sequence: two sessions of one resident daemon
        // flushing the same directory concurrently must not share a temp
        // file (the rename itself is atomic either way).
        static FLUSH_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{PACK_FILE}.tmp-{}-{}",
            std::process::id(),
            FLUSH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let chaos = self.chaos.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..FLUSH_ATTEMPTS {
            match self.write_pack_durably(&chaos, &tmp, &path, &pack) {
                Ok(()) => {
                    store.dirty = false;
                    if attempt > 0 {
                        chaos.note_recovered(PACK_FILE);
                        let why = last_err
                            .take()
                            .map_or_else(String::new, |e| format!(": {e}"));
                        self.chaos_diag(format!(
                            "{}: flush recovered after {attempt} retry(s){why}",
                            path.display()
                        ));
                    }
                    return;
                }
                Err(e) if attempt + 1 < FLUSH_ATTEMPTS && is_transient(&e) => {
                    self.lock_stats().flush_retries += 1;
                    last_err = Some(e);
                    // Tiny exponential backoff: 1ms, 2ms. Real transient
                    // errors (EINTR under signal storms) clear quickly;
                    // anything slower is persistent and hits the cap.
                    std::thread::sleep(std::time::Duration::from_millis(1 << attempt));
                }
                Err(e) => {
                    last_err = Some(e);
                    break;
                }
            }
        }
        let _ = std::fs::remove_file(&tmp);
        drop(store);
        let e = last_err.expect("every failed attempt records its error");
        self.diag(PACK_FILE, format!("{}: write failed: {e}", path.display()));
    }

    /// One durable write attempt: create + write + `sync_all` the temp
    /// file, `rename` it over the pack, `sync_all` the directory.
    /// Chaos fault sites are compiled into each step; the bit-flip site
    /// corrupts the payload but lets the write *succeed* (silent
    /// corruption for the next open to detect and heal).
    fn write_pack_durably(
        &self,
        chaos: &FaultPlan,
        tmp: &Path,
        path: &Path,
        pack: &[u8],
    ) -> std::io::Result<()> {
        use spo_chaos::sites;
        use std::io::Write as _;
        let flipped: Vec<u8>;
        let payload: &[u8] = if !pack.is_empty() && chaos.should_fire(sites::CACHE_BITFLIP) {
            let pos = chaos.amount(sites::CACHE_BITFLIP, pack.len() as u64) as usize;
            let mut copy = pack.to_vec();
            copy[pos] ^= 0x01;
            flipped = copy;
            &flipped
        } else {
            pack
        };
        {
            let mut f = std::fs::File::create(tmp)?;
            if chaos.should_fire(sites::CACHE_WRITE_SHORT) {
                f.write_all(&payload[..payload.len() / 2])?;
                let _ = f.sync_all();
                return Err(spo_chaos::injected_io_error(sites::CACHE_WRITE_SHORT));
            }
            f.write_all(payload)?;
            if chaos.should_fire(sites::CACHE_FSYNC_FAIL) {
                return Err(spo_chaos::injected_io_error(sites::CACHE_FSYNC_FAIL));
            }
            f.sync_all()?;
        }
        if chaos.should_fire(sites::CACHE_RENAME_FAIL) {
            return Err(spo_chaos::injected_io_error(sites::CACHE_RENAME_FAIL));
        }
        std::fs::rename(tmp, path)?;
        // The rename is durable only once the directory entry is synced;
        // a failure here is not worth failing the flush over (the data
        // file itself is already synced).
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    /// This process's running counters.
    pub fn stats(&self) -> CacheStats {
        *self.lock_stats()
    }

    /// Drains the accumulated cache diagnostics (warnings only — cache
    /// problems never change results or exit codes).
    pub fn take_diagnostics(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut self.diagnostics.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Cached entries and the pack file's size in bytes on disk.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the pack file's metadata cannot be
    /// read (a missing pack is simply empty, not an error).
    pub fn disk_usage(&self) -> std::io::Result<(usize, u64)> {
        let entries = self.read_store().entries.len();
        match std::fs::metadata(self.pack_path()) {
            Ok(meta) => Ok((entries, meta.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok((entries, 0)),
            Err(e) => Err(e),
        }
    }

    /// Removes the pack file and the in-memory store, returning how many
    /// entries were dropped.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the pack file exists but cannot be
    /// removed.
    pub fn clear(&self) -> std::io::Result<usize> {
        let mut store = self.lock_store();
        let removed = store.entries.len();
        store.entries.clear();
        store.dirty = false;
        match std::fs::remove_file(self.pack_path()) {
            Ok(()) => Ok(removed),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(removed),
            Err(e) => Err(e),
        }
    }
}

impl Drop for PolicyCache {
    /// Best-effort persistence for callers that never flushed explicitly.
    fn drop(&mut self) {
        self.flush();
    }
}

// ---------------------------------------------------------------------------
// Pack format
//
//   "spo-cache <FORMAT_VERSION>\n"
//   u64 LE  entry count
//   repeated: u64 LE root key, u32 LE blob length, blob bytes
//
// and each blob (see encode_blob/decode_blob):
//
//   str     signature                    (str = u32 LE length + UTF-8 bytes)
//   u64     cone key
//   u32     cone size, u64 identity hash each (sorted)
//   u32     event count
//   per event: EventKey, u32 must bits, u32 may bits,
//              u32 disjunct count, u32 bits each
//   u32     event-origin count;  per item: EventKey, u32 count, str each
//   u32     check-origin count;  per item: u8 check, u32 count, str each
//
// EventKey = u8 tag (0 = ApiReturn, 1 = Native, 2 = DataRead,
// 3 = DataWrite) + str name for every tag but 0.
//
// The primitive writers and the bounded reader are shared with the
// compiled policy index ([`spo_index::codec`]); only the blob layout is
// cache-specific.
// ---------------------------------------------------------------------------

use spo_index::codec::{put_event_key, put_str, put_u32, put_u64, Cursor};

fn encode_blob(key: u64, cone: &[u64], entry: &EntryPolicy) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + 8 * cone.len());
    put_str(&mut buf, &entry.signature);
    put_u64(&mut buf, key);
    put_u32(&mut buf, cone.len() as u32);
    for &identity in cone {
        put_u64(&mut buf, identity);
    }
    put_u32(&mut buf, entry.events.len() as u32);
    for (event, policy) in &entry.events {
        put_event_key(&mut buf, event);
        put_u32(&mut buf, policy.must.bits().bits());
        put_u32(&mut buf, policy.may.bits().bits());
        let disjuncts = policy.may_paths.disjuncts();
        put_u32(&mut buf, disjuncts.len() as u32);
        for d in disjuncts {
            put_u32(&mut buf, d.bits());
        }
    }
    put_u32(&mut buf, entry.event_origins.len() as u32);
    for (event, origins) in &entry.event_origins {
        put_event_key(&mut buf, event);
        put_u32(&mut buf, origins.len() as u32);
        for origin in origins {
            put_str(&mut buf, origin);
        }
    }
    put_u32(&mut buf, entry.check_origins.len() as u32);
    for (&check, origins) in &entry.check_origins {
        buf.push(check);
        put_u32(&mut buf, origins.len() as u32);
        for origin in origins {
            put_str(&mut buf, origin);
        }
    }
    buf
}

/// Decodes a blob and validates its stored cone against `table`.
/// `Ok(None)` means well-formed but stale (cone re-keys differently);
/// the policy body is then not decoded at all.
///
/// Every length-prefixed collection is read through the shared checked
/// counted reads ([`Cursor::counted`]): a count is validated against the
/// bytes actually remaining *before* anything is reserved, so a length
/// field truncated or corrupted into a huge value degrades to the
/// cold-fallback diagnostic path instead of a capacity panic.
fn decode_blob(blob: &[u8], table: &ContentTable) -> Result<Option<(String, EntryPolicy)>, String> {
    let mut c = Cursor::new(blob);
    let signature = c.str()?;
    let key = c.u64()?;
    let cone_len = c.counted(8)?;
    let mut cone = Vec::with_capacity(cone_len as usize);
    for _ in 0..cone_len {
        cone.push(c.u64()?);
    }
    if table.key_of_cone(&cone) != Some(key) {
        return Ok(None);
    }
    let mut entry = EntryPolicy::new(signature);
    // Min event encoding: u8 tag + u32 must + u32 may + u32 disjunct count.
    for _ in 0..c.counted(13)? {
        let event = c.event_key()?;
        let must = spo_core::CheckSet::from_bits(BitSet32::from_bits(c.u32()?));
        let may = spo_core::CheckSet::from_bits(BitSet32::from_bits(c.u32()?));
        let n_disjuncts = c.counted(4)?;
        let may_paths: Dnf = (0..n_disjuncts)
            .map(|_| c.u32().map(BitSet32::from_bits))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .collect();
        entry.events.insert(
            event,
            EventPolicy {
                must,
                may,
                may_paths,
            },
        );
    }
    // Min origin-list encoding: u8 event tag / check + u32 count.
    for _ in 0..c.counted(5)? {
        let event = c.event_key()?;
        let n = c.counted(4)?;
        let origins = (0..n).map(|_| c.str()).collect::<Result<_, _>>()?;
        entry.event_origins.insert(event, origins);
    }
    for _ in 0..c.counted(5)? {
        let check = c.u8()?;
        let n = c.counted(4)?;
        let origins = (0..n).map(|_| c.str()).collect::<Result<_, _>>()?;
        entry.check_origins.insert(check, origins);
    }
    if c.pos() != blob.len() {
        return Err("trailing bytes in entry".to_owned());
    }
    let signature = entry.signature.clone();
    Ok(Some((signature, entry)))
}

fn render_pack(entries: &HashMap<u64, Vec<u8>>) -> Vec<u8> {
    let payload: usize = entries.values().map(|b| b.len() + 12).sum();
    let mut pack = Vec::with_capacity(40 + payload);
    pack.extend_from_slice(format!("spo-cache {FORMAT_VERSION}\n").as_bytes());
    put_u64(&mut pack, entries.len() as u64);
    // Key order, so identical stores render identical packs regardless of
    // hash-map iteration order.
    let mut keys: Vec<u64> = entries.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let blob = &entries[&key];
        put_u64(&mut pack, key);
        put_u32(&mut pack, blob.len() as u32);
        pack.extend_from_slice(blob);
    }
    // Trailing whole-pack checksum: a single flipped bit anywhere in the
    // file must discard the pack, not decode into a different-but-valid
    // summary (policy bitmasks have no internal redundancy of their own).
    let mut h = Fnv64::new();
    h.write(&pack);
    put_u64(&mut pack, h.finish());
    pack
}

/// Parses and validates a pack file; the `Err` string names what was
/// wrong for the diagnostic. Any framing damage or checksum mismatch
/// discards the whole pack — the cache degrades to cold roots and heals
/// on the next flush.
fn parse_pack(bytes: &[u8]) -> Result<HashMap<u64, Vec<u8>>, String> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("missing cache version header")?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| "missing cache version header".to_owned())?;
    match header.strip_prefix("spo-cache ") {
        Some(v) if v == FORMAT_VERSION.to_string() => {}
        Some(v) => return Err(format!("cache format version {v} != {FORMAT_VERSION}")),
        None => return Err("missing cache version header".to_owned()),
    }
    if bytes.len() < header_end + 9 {
        return Err("truncated pack (no checksum)".to_owned());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut h = Fnv64::new();
    h.write(body);
    let want = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
    if h.finish() != want {
        return Err("pack checksum mismatch (corrupt cache)".to_owned());
    }
    let bytes = body;
    let mut c = Cursor::at(bytes, header_end + 1);
    // Min entry encoding: u64 key + u32 length. The checked counted read
    // bounds the count against the remaining bytes before the map is
    // sized, so a corrupt count cannot drive a huge reservation.
    let count = c
        .counted64(12)
        .map_err(|_| "truncated pack (no entry count)".to_owned())?;
    let mut entries = HashMap::with_capacity(count as usize);
    for i in 0..count {
        let frame = || format!("truncated pack (entry {i} of {count})");
        let key = c.u64().map_err(|_| frame())?;
        let len = c.u32().map_err(|_| frame())? as usize;
        let blob = c.take(len).map_err(|_| frame())?;
        entries.insert(key, blob.to_vec());
    }
    if c.pos() != bytes.len() {
        return Err("trailing bytes after last pack entry".to_owned());
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_core::Analyzer;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spo-cache-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const SRC: &str = r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
class t.A {
  method public void read() {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead("f");
    staticinvoke t.A.op0();
    return;
  }
  method public void idle() {
    local int i;
    i = 0;
    return;
  }
  method private static native void op0();
}
"#;

    fn analyzed_entry(src: &str, sig_contains: &str) -> (Program, MethodId, EntryPolicy) {
        let program = spo_jir::parse_program(src).unwrap();
        let lib = Analyzer::new(&program, AnalysisOptions::default()).analyze_library("t");
        let root = spo_resolve::entry_points(&program)
            .into_iter()
            .find(|&m| program.method_signature(m).contains(sig_contains))
            .unwrap();
        let sig = program.method_signature(root);
        let entry = lib.entries[&sig].clone();
        (program, root, entry)
    }

    /// One root's full cache context: root key, cone key + identities,
    /// and the current content table.
    fn keyed(program: &Program, root: MethodId) -> (u64, u64, Vec<u64>, ContentTable) {
        let options = AnalysisOptions::default();
        let keyer = CacheKeyer::new(program, &[root], &options);
        let rk = PolicyCache::root_key("t", method_identity_hash(program, root));
        let table = ContentTable::new(program, &options);
        (
            rk,
            keyer.key(root).unwrap(),
            keyer.cone(root).unwrap().to_vec(),
            table,
        )
    }

    #[test]
    fn roundtrip_store_flush_reopen_lookup() {
        let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
        let (rk, key, cone, table) = keyed(&program, root);
        let dir = temp_dir("roundtrip");
        let cache = PolicyCache::open(&dir).unwrap();
        assert_eq!(cache.lookup(rk, &table), None);
        cache.store(rk, key, &cone, &entry);
        assert_eq!(
            cache.lookup(rk, &table),
            Some((entry.signature.clone(), entry.clone()))
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidated), (1, 1, 0));
        assert!(stats.bytes > 0);
        assert!(cache.take_diagnostics().is_empty());
        cache.flush();

        // A fresh open reads the flushed pack.
        let reopened = PolicyCache::open(&dir).unwrap();
        assert_eq!(
            reopened.lookup(rk, &table),
            Some((entry.signature.clone(), entry))
        );
        assert!(reopened.take_diagnostics().is_empty());
    }

    #[test]
    fn drop_flushes_unpersisted_stores() {
        let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
        let (rk, key, cone, table) = keyed(&program, root);
        let dir = temp_dir("drop-flush");
        {
            let cache = PolicyCache::open(&dir).unwrap();
            cache.store(rk, key, &cone, &entry);
            // No explicit flush.
        }
        let reopened = PolicyCache::open(&dir).unwrap();
        assert_eq!(
            reopened.lookup(rk, &table),
            Some((entry.signature.clone(), entry))
        );
    }

    #[test]
    fn stored_cone_revalidates_without_a_call_graph() {
        let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
        let (rk, key, cone, table) = keyed(&program, root);
        // The cone carries the root and its transitive callees by identity.
        assert!(cone.contains(&method_identity_hash(&program, root)));
        assert_eq!(table.key_of_cone(&cone), Some(key));

        let cache = PolicyCache::open(temp_dir("revalidate")).unwrap();
        cache.store(rk, key, &cone, &entry);

        // A body edit inside the cone re-keys it: stale entry, plain miss,
        // no diagnostic.
        let edited = SRC.replace("virtualinvoke sm.checkRead(\"f\");", "nop;");
        let program2 = spo_jir::parse_program(&edited).unwrap();
        let table2 = ContentTable::new(&program2, &AnalysisOptions::default());
        assert_ne!(table2.key_of_cone(&cone), Some(key));
        assert_eq!(cache.lookup(rk, &table2), None);
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.take_diagnostics().is_empty());

        // A deleted cone member also re-keys (to nothing at all).
        let removed = SRC.replace("method private static native void op0();", "");
        let program3 = spo_jir::parse_program(&removed).unwrap();
        let table3 = ContentTable::new(&program3, &AnalysisOptions::default());
        assert_eq!(table3.key_of_cone(&cone), None);
        assert_eq!(cache.lookup(rk, &table3), None);

        // Unrelated edits keep the hit.
        let unrelated = SRC.replace("i = 0;", "i = 7;");
        let program4 = spo_jir::parse_program(&unrelated).unwrap();
        let table4 = ContentTable::new(&program4, &AnalysisOptions::default());
        assert_eq!(
            cache.lookup(rk, &table4),
            Some((entry.signature.clone(), entry))
        );
    }

    #[test]
    fn root_keys_separate_libraries() {
        let (program, root, _) = analyzed_entry(SRC, "t.A.read");
        let identity = method_identity_hash(&program, root);
        assert_ne!(
            PolicyCache::root_key("jdk", identity),
            PolicyCache::root_key("harmony", identity)
        );
    }

    #[test]
    fn blob_codec_roundtrips_exactly() {
        let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
        let (_, key, cone, table) = keyed(&program, root);
        assert!(!entry.events.is_empty(), "fixture should have events");
        assert!(
            !entry.event_origins.is_empty() || !entry.check_origins.is_empty(),
            "fixture should have origins"
        );
        let blob = encode_blob(key, &cone, &entry);
        assert_eq!(
            decode_blob(&blob, &table),
            Ok(Some((entry.signature.clone(), entry)))
        );
    }

    #[test]
    fn body_edit_changes_only_affected_cone_keys() {
        let program = spo_jir::parse_program(SRC).unwrap();
        let roots = spo_resolve::entry_points(&program);
        let options = AnalysisOptions::default();
        let keyer1 = CacheKeyer::new(&program, &roots, &options);

        // Edit a body inside t.A.read's cone but outside t.A.idle's.
        let edited = SRC.replace("virtualinvoke sm.checkRead(\"f\");", "nop;");
        let program2 = spo_jir::parse_program(&edited).unwrap();
        let roots2 = spo_resolve::entry_points(&program2);
        let keyer2 = CacheKeyer::new(&program2, &roots2, &options);

        for (&r1, &r2) in roots.iter().zip(&roots2) {
            let sig = program.method_signature(r1);
            assert_eq!(sig, program2.method_signature(r2));
            let (k1, k2) = (keyer1.key(r1).unwrap(), keyer2.key(r2).unwrap());
            if sig.contains("read") {
                assert_ne!(k1, k2, "{sig} key must change");
            } else {
                assert_eq!(k1, k2, "{sig} key must not change");
            }
        }
    }

    #[test]
    fn structural_edit_changes_every_key() {
        let program = spo_jir::parse_program(SRC).unwrap();
        let roots = spo_resolve::entry_points(&program);
        let options = AnalysisOptions::default();
        let keyer1 = CacheKeyer::new(&program, &roots, &options);
        let edited = SRC.replace("class t.A {", "class t.A {\n  field int pad;");
        let program2 = spo_jir::parse_program(&edited).unwrap();
        let keyer2 = CacheKeyer::new(&program2, &spo_resolve::entry_points(&program2), &options);
        for (&r1, &r2) in roots
            .iter()
            .zip(spo_resolve::entry_points(&program2).iter())
        {
            assert_ne!(keyer1.key(r1).unwrap(), keyer2.key(r2).unwrap());
        }
    }

    #[test]
    fn result_affecting_options_partition_the_key_space() {
        let program = spo_jir::parse_program(SRC).unwrap();
        let roots = spo_resolve::entry_points(&program);
        let base = AnalysisOptions::default();
        let root = roots[0];
        let key = |o: &AnalysisOptions| CacheKeyer::new(&program, &roots, o).key(root).unwrap();
        let base_key = key(&base);
        for options in [
            AnalysisOptions { icp: false, ..base },
            AnalysisOptions {
                events: spo_core::EventDef::Broad,
                ..base
            },
            AnalysisOptions {
                interprocedural: false,
                ..base
            },
        ] {
            assert_ne!(key(&options), base_key, "{options:?}");
        }
        // Memo scope is result-invariant and shares the key.
        let memo = AnalysisOptions {
            memo: spo_core::MemoScope::None,
            ..base
        };
        assert_eq!(key(&memo), base_key);
    }

    #[test]
    fn corrupt_truncated_and_version_bumped_packs_degrade_cleanly() {
        let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
        let (rk, key, cone, table) = keyed(&program, root);
        let dir = temp_dir("corrupt");
        {
            let cache = PolicyCache::open(&dir).unwrap();
            cache.store(rk, key, &cone, &entry);
            cache.flush();
        }
        let path = dir.join(PACK_FILE);
        let good = std::fs::read(&path).unwrap();

        let mut bumped = good.clone();
        bumped.splice(..b"spo-cache 2".len(), b"spo-cache 9".iter().copied());
        let mangled: [Vec<u8>; 5] = [
            b"@@@ not a cache pack @@@".to_vec(), // corrupt header
            good[..good.len() / 2].to_vec(),      // truncated mid-entry
            bumped,                               // version bump
            Vec::new(),                           // empty file
            good.iter().rev().copied().collect(), // garbage body
        ];
        for (i, bad) in mangled.iter().enumerate() {
            std::fs::write(&path, bad).unwrap();
            let cache = PolicyCache::open(&dir).unwrap();
            assert_eq!(cache.lookup(rk, &table), None, "case {i}");
            let stats = cache.stats();
            assert_eq!((stats.invalidated, stats.misses), (1, 1), "case {i}");
            let diags = cache.take_diagnostics();
            assert_eq!(diags.len(), 1, "case {i}");
            assert_eq!(diags[0].cause, spo_guard::Cause::Cache);
            assert_eq!(diags[0].severity, spo_guard::Severity::Warning);
            // A fresh store + flush heals the pack in place.
            cache.store(rk, key, &cone, &entry);
            cache.flush();
            let healed = PolicyCache::open(&dir).unwrap();
            assert_eq!(
                healed.lookup(rk, &table),
                Some((entry.signature.clone(), entry.clone())),
                "case {i}"
            );
            assert!(healed.take_diagnostics().is_empty(), "case {i}");
        }
    }

    #[test]
    fn undecodable_entry_is_dropped_and_healed() {
        let (program, root, _) = analyzed_entry(SRC, "t.A.read");
        let (rk, _, _, table) = keyed(&program, root);
        let cache = PolicyCache::open(temp_dir("bad-entry")).unwrap();
        // Well-framed pack, nonsense blob under the right root key.
        cache.lock_store().entries.insert(rk, vec![0xde, 0xad]);
        assert_eq!(cache.lookup(rk, &table), None);
        assert_eq!(cache.stats().invalidated, 1);
        assert_eq!(cache.take_diagnostics().len(), 1);
        // The bad blob was dropped: next lookup is a plain miss.
        assert_eq!(cache.lookup(rk, &table), None);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn clear_and_disk_usage() {
        let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
        let (rk, key, cone, _) = keyed(&program, root);
        let cache = PolicyCache::open(temp_dir("clear")).unwrap();
        cache.store(rk, key, &cone, &entry);
        cache.flush();
        let (entries, bytes) = cache.disk_usage().unwrap();
        assert_eq!(entries, 1);
        assert!(bytes > 0);
        assert_eq!(cache.clear().unwrap(), 1);
        assert_eq!(cache.disk_usage().unwrap(), (0, 0));
    }

    #[test]
    fn flush_retries_injected_transient_faults_and_recovers() {
        use spo_chaos::{sites, FaultPlan};
        for site in [
            sites::CACHE_WRITE_SHORT,
            sites::CACHE_FSYNC_FAIL,
            sites::CACHE_RENAME_FAIL,
        ] {
            let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
            let (rk, key, cone, table) = keyed(&program, root);
            let dir = temp_dir(&format!("retry-{}", site.replace('.', "-")));
            let cache = PolicyCache::open(&dir).unwrap();
            let plan = FaultPlan::seeded(1).site_once(site);
            cache.set_fault_plan(plan.clone());
            cache.store(rk, key, &cone, &entry);
            cache.flush();
            // The injected failure was absorbed by one retry: the pack
            // landed, the recovery is on the record, and no temp file
            // litters the directory.
            assert_eq!(plan.injected(), 1, "{site}");
            assert_eq!(plan.recovered(), 1, "{site}");
            assert_eq!(cache.stats().flush_retries, 1, "{site}");
            let diags = cache.take_diagnostics();
            assert_eq!(diags.len(), 1, "{site}: {diags:?}");
            assert_eq!(diags[0].cause, spo_guard::Cause::Chaos);
            assert_eq!(diags[0].phase, spo_guard::Phase::Chaos);
            assert!(diags[0].message.contains("recovered after 1 retry"));
            let leftovers: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(Result::ok)
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
                .collect();
            assert!(leftovers.is_empty(), "{site}: {leftovers:?}");
            drop(cache);
            let reopened = PolicyCache::open(&dir).unwrap();
            assert_eq!(
                reopened.lookup(rk, &table),
                Some((entry.signature.clone(), entry.clone())),
                "{site}"
            );
        }
    }

    #[test]
    fn persistent_flush_failure_degrades_to_a_diagnostic_and_stays_dirty() {
        use spo_chaos::{sites, FaultPlan};
        let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
        let (rk, key, cone, table) = keyed(&program, root);
        let dir = temp_dir("flush-fail");
        let cache = PolicyCache::open(&dir).unwrap();
        // Rate 1.0 fires on every attempt: all FLUSH_ATTEMPTS fail.
        cache.set_fault_plan(FaultPlan::seeded(2).site(sites::CACHE_RENAME_FAIL, 1.0));
        cache.store(rk, key, &cone, &entry);
        cache.flush();
        assert_eq!(cache.stats().flush_retries, u64::from(FLUSH_ATTEMPTS - 1));
        let diags = cache.take_diagnostics();
        assert!(
            diags.iter().any(|d| d.message.contains("write failed")),
            "{diags:?}"
        );
        assert!(!dir.join(PACK_FILE).exists());
        // Disarm the plan: the store is still dirty, so the next flush
        // lands the pack — degradation never loses the computed entries.
        cache.set_fault_plan(FaultPlan::disabled());
        cache.flush();
        drop(cache);
        let reopened = PolicyCache::open(&dir).unwrap();
        assert_eq!(
            reopened.lookup(rk, &table),
            Some((entry.signature.clone(), entry.clone()))
        );
    }

    #[test]
    fn bitflip_corruption_is_caught_on_reopen_and_heals_on_flush() {
        use spo_chaos::{sites, FaultPlan};
        let (program, root, entry) = analyzed_entry(SRC, "t.A.read");
        let (rk, key, cone, table) = keyed(&program, root);
        let dir = temp_dir("bitflip");
        {
            let cache = PolicyCache::open(&dir).unwrap();
            cache.set_fault_plan(FaultPlan::seeded(3).site_once(sites::CACHE_BITFLIP));
            cache.store(rk, key, &cone, &entry);
            cache.flush();
            // The flip is silent at write time: the flush "succeeded".
            assert!(cache.take_diagnostics().is_empty());
            cache.set_fault_plan(FaultPlan::disabled());
        }
        // The corruption surfaces on the next open or lookup as a
        // degrade-to-cold (never a panic), and a fresh store + flush
        // heals the pack in place.
        let reopened = PolicyCache::open(&dir).unwrap();
        if reopened.lookup(rk, &table) != Some((entry.signature.clone(), entry.clone())) {
            reopened.store(rk, key, &cone, &entry);
        }
        reopened.flush();
        drop(reopened);
        let healed = PolicyCache::open(&dir).unwrap();
        assert!(healed.take_diagnostics().is_empty());
        assert_eq!(
            healed.lookup(rk, &table),
            Some((entry.signature.clone(), entry.clone()))
        );
    }
}
