//! Conditional constant propagation over JIR bodies.
//!
//! Reproduces the role Wegman–Zadeck constant propagation plays in the
//! paper (§4.2): propagate integer/boolean/`null` constants into branch
//! conditions and suppress unexecutable edges, so that context-dependent
//! security checks (Figure 4's `handler != null`) are attributed to the
//! right calling contexts. Constants also flow *into* callees through
//! parameter binding — that part lives in the interprocedural driver, which
//! seeds a [`ConstEnv`] from known-constant arguments.

use crate::lattice::JoinLattice;
use spo_jir::{BinOp, CmpOp, Cond, Const, Expr, LocalId, Operand, Stmt, UnOp};

/// An abstract constant value for one local.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum AbsVal {
    /// Not yet assigned on any path seen so far (⊤).
    #[default]
    Top,
    /// A known constant.
    Val(Const),
    /// A reference known to be non-null, with unknown identity (e.g. the
    /// result of `new`).
    NotNull,
    /// Unknown (⊥).
    Bottom,
}

impl AbsVal {
    /// Whether the value is a known constant.
    pub fn as_const(self) -> Option<Const> {
        match self {
            AbsVal::Val(c) => Some(c),
            _ => None,
        }
    }

    /// Three-valued truthiness (for `if x` / `if !x`).
    pub fn truthiness(self) -> Option<bool> {
        match self {
            AbsVal::Val(Const::Bool(b)) => Some(b),
            AbsVal::Val(Const::Int(i)) => Some(i != 0),
            _ => None,
        }
    }

    /// Three-valued null-ness for reference comparisons.
    pub fn nullness(self) -> Option<bool> {
        match self {
            AbsVal::Val(Const::Null) => Some(true),
            AbsVal::Val(Const::Str(_)) | AbsVal::Val(Const::Class(_)) | AbsVal::NotNull => {
                Some(false)
            }
            _ => None,
        }
    }
}

impl JoinLattice for AbsVal {
    fn join(&mut self, other: &Self) -> bool {
        let joined = match (*self, *other) {
            (a, AbsVal::Top) => a,
            (AbsVal::Top, b) => b,
            (AbsVal::Bottom, _) | (_, AbsVal::Bottom) => AbsVal::Bottom,
            (AbsVal::Val(a), AbsVal::Val(b)) if a == b => AbsVal::Val(a),
            // Two different non-null reference constants still agree on
            // non-null-ness.
            (AbsVal::Val(a), AbsVal::Val(b)) if is_nonnull_ref(a) && is_nonnull_ref(b) => {
                AbsVal::NotNull
            }
            (AbsVal::NotNull, AbsVal::Val(v)) | (AbsVal::Val(v), AbsVal::NotNull)
                if is_nonnull_ref(v) =>
            {
                AbsVal::NotNull
            }
            (AbsVal::NotNull, AbsVal::NotNull) => AbsVal::NotNull,
            _ => AbsVal::Bottom,
        };
        let changed = joined != *self;
        *self = joined;
        changed
    }
}

fn is_nonnull_ref(c: Const) -> bool {
    matches!(c, Const::Str(_) | Const::Class(_))
}

/// Per-local abstract constant environment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConstEnv {
    vals: Vec<AbsVal>,
}

impl ConstEnv {
    /// An environment of `n` locals, all ⊤ (unassigned).
    pub fn top(n: usize) -> Self {
        ConstEnv {
            vals: vec![AbsVal::Top; n],
        }
    }

    /// An environment where the first `n_params` locals are ⊥ (arbitrary
    /// caller-supplied values) and the rest ⊤ — the entry state for an
    /// analysis with no constant-argument information.
    pub fn entry(n_locals: usize, n_params: usize) -> Self {
        let mut env = ConstEnv::top(n_locals);
        for v in &mut env.vals[..n_params] {
            *v = AbsVal::Bottom;
        }
        env
    }

    /// Reads a local.
    pub fn get(&self, l: LocalId) -> AbsVal {
        self.vals.get(l.index()).copied().unwrap_or(AbsVal::Bottom)
    }

    /// Writes a local.
    pub fn set(&mut self, l: LocalId, v: AbsVal) {
        if let Some(slot) = self.vals.get_mut(l.index()) {
            *slot = v;
        }
    }

    /// Evaluates an operand.
    pub fn eval_operand(&self, op: Operand) -> AbsVal {
        match op {
            Operand::Const(c) => AbsVal::Val(c),
            Operand::Local(l) => self.get(l),
        }
    }

    /// Evaluates a right-hand-side expression. Calls are *not* handled here
    /// (the interprocedural driver decides what a call returns).
    pub fn eval_expr(&self, e: &Expr) -> AbsVal {
        match e {
            Expr::Operand(o) => self.eval_operand(*o),
            Expr::Unary { op, operand } => match (op, self.eval_operand(*operand)) {
                (UnOp::Not, AbsVal::Val(Const::Bool(b))) => AbsVal::Val(Const::Bool(!b)),
                (UnOp::Neg, AbsVal::Val(Const::Int(i))) => {
                    AbsVal::Val(Const::Int(i.wrapping_neg()))
                }
                _ => AbsVal::Bottom,
            },
            Expr::Binary { op, lhs, rhs } => {
                match (self.eval_operand(*lhs), self.eval_operand(*rhs)) {
                    (AbsVal::Val(Const::Int(a)), AbsVal::Val(Const::Int(b))) => {
                        eval_int_binop(*op, a, b)
                    }
                    (AbsVal::Val(Const::Bool(a)), AbsVal::Val(Const::Bool(b))) => {
                        let r = match op {
                            BinOp::And => a && b,
                            BinOp::Or => a || b,
                            BinOp::Xor => a ^ b,
                            _ => return AbsVal::Bottom,
                        };
                        AbsVal::Val(Const::Bool(r))
                    }
                    _ => AbsVal::Bottom,
                }
            }
            // Allocations are non-null with unknown identity.
            Expr::New(_) | Expr::NewArray { .. } => AbsVal::NotNull,
            // Casts preserve the abstract value (a checked cast of null is
            // null; of a constant string, the same string).
            Expr::Cast { operand, .. } => self.eval_operand(*operand),
            // Heap reads and type tests are unknown.
            Expr::FieldLoad(_) | Expr::ArrayLoad { .. } | Expr::InstanceOf { .. } => AbsVal::Bottom,
        }
    }

    /// Three-valued evaluation of a branch condition. `Some(b)` means the
    /// branch provably goes one way; `None` means both edges are live.
    pub fn eval_cond(&self, cond: &Cond) -> Option<bool> {
        match cond {
            Cond::Truthy(o) => self.eval_operand(*o).truthiness(),
            Cond::Falsy(o) => self.eval_operand(*o).truthiness().map(|b| !b),
            Cond::Cmp { op, lhs, rhs } => {
                let (a, b) = (self.eval_operand(*lhs), self.eval_operand(*rhs));
                // Null comparisons, including against NotNull values.
                if matches!(*op, CmpOp::Eq | CmpOp::Ne) {
                    if let Some(result) = eval_ref_eq(a, b) {
                        return Some(if *op == CmpOp::Eq { result } else { !result });
                    }
                }
                match (a, b) {
                    (AbsVal::Val(Const::Int(x)), AbsVal::Val(Const::Int(y))) => {
                        Some(op.eval_int(x, y))
                    }
                    (AbsVal::Val(Const::Bool(x)), AbsVal::Val(Const::Bool(y))) => match op {
                        CmpOp::Eq => Some(x == y),
                        CmpOp::Ne => Some(x != y),
                        _ => None,
                    },
                    _ => None,
                }
            }
        }
    }

    /// Applies the effect of a non-call statement to the environment.
    /// Call statements must be handled by the caller (the result value is
    /// context dependent); this function treats them as clobbering the
    /// destination.
    pub fn transfer(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { dst, value } => {
                let v = self.eval_expr(value);
                self.set(*dst, v);
            }
            Stmt::Invoke { dst: Some(d), .. } => self.set(*d, AbsVal::Bottom),
            _ => {}
        }
    }
}

impl JoinLattice for ConstEnv {
    fn join(&mut self, other: &Self) -> bool {
        debug_assert_eq!(self.vals.len(), other.vals.len());
        let mut changed = false;
        for (a, b) in self.vals.iter_mut().zip(&other.vals) {
            changed |= a.join(b);
        }
        changed
    }
}

fn eval_int_binop(op: BinOp, a: i64, b: i64) -> AbsVal {
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return AbsVal::Bottom;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return AbsVal::Bottom;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
    };
    AbsVal::Val(Const::Int(r))
}

/// Reference equality when null-ness (or string identity) decides it.
fn eval_ref_eq(a: AbsVal, b: AbsVal) -> Option<bool> {
    // Identical interned strings compare equal (literals are interned in
    // Java); identical class literals likewise.
    if let (AbsVal::Val(x), AbsVal::Val(y)) = (a, b) {
        if x == y && matches!(x, Const::Null | Const::Str(_) | Const::Class(_)) {
            return Some(true);
        }
    }
    match (a.nullness(), b.nullness()) {
        (Some(true), Some(true)) => Some(true),
        (Some(true), Some(false)) | (Some(false), Some(true)) => Some(false),
        // Two non-null refs with unknown identity: undecided.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(i: u32) -> LocalId {
        LocalId(i)
    }

    #[test]
    fn join_lattice_laws() {
        let mut v = AbsVal::Top;
        assert!(v.join(&AbsVal::Val(Const::Int(3))));
        assert_eq!(v, AbsVal::Val(Const::Int(3)));
        assert!(!v.join(&AbsVal::Val(Const::Int(3))));
        assert!(v.join(&AbsVal::Val(Const::Int(4))));
        assert_eq!(v, AbsVal::Bottom);
    }

    #[test]
    fn nonnull_refs_join_to_notnull() {
        let mut i = spo_jir::Interner::new();
        let s1 = AbsVal::Val(Const::Str(i.intern("a")));
        let s2 = AbsVal::Val(Const::Str(i.intern("b")));
        let mut v = s1;
        assert!(v.join(&s2));
        assert_eq!(v, AbsVal::NotNull);
        // null kills non-null-ness entirely.
        let mut v2 = AbsVal::NotNull;
        v2.join(&AbsVal::Val(Const::Null));
        assert_eq!(v2, AbsVal::Bottom);
    }

    #[test]
    fn figure_4_null_test_folds() {
        // handler = null; if handler != null -> provably false.
        let mut env = ConstEnv::top(1);
        env.set(lid(0), AbsVal::Val(Const::Null));
        let cond = Cond::Cmp {
            op: CmpOp::Ne,
            lhs: Operand::Local(lid(0)),
            rhs: Operand::Const(Const::Null),
        };
        assert_eq!(env.eval_cond(&cond), Some(false));
    }

    #[test]
    fn new_object_is_not_null() {
        let mut env = ConstEnv::top(1);
        let mut interner = spo_jir::Interner::new();
        let c = interner.intern("C");
        env.set(lid(0), env.eval_expr(&Expr::New(c)));
        let cond = Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Operand::Local(lid(0)),
            rhs: Operand::Const(Const::Null),
        };
        assert_eq!(env.eval_cond(&cond), Some(false));
    }

    #[test]
    fn int_arithmetic_folds() {
        let env = ConstEnv::top(0);
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Operand::Const(Const::Int(40)),
            rhs: Operand::Const(Const::Int(2)),
        };
        assert_eq!(env.eval_expr(&e), AbsVal::Val(Const::Int(42)));
        let div0 = Expr::Binary {
            op: BinOp::Div,
            lhs: Operand::Const(Const::Int(1)),
            rhs: Operand::Const(Const::Int(0)),
        };
        assert_eq!(env.eval_expr(&div0), AbsVal::Bottom);
    }

    #[test]
    fn bool_ops_fold() {
        let env = ConstEnv::top(0);
        let e = Expr::Binary {
            op: BinOp::And,
            lhs: Operand::Const(Const::Bool(true)),
            rhs: Operand::Const(Const::Bool(false)),
        };
        assert_eq!(env.eval_expr(&e), AbsVal::Val(Const::Bool(false)));
        let not = Expr::Unary {
            op: UnOp::Not,
            operand: Operand::Const(Const::Bool(false)),
        };
        assert_eq!(env.eval_expr(&not), AbsVal::Val(Const::Bool(true)));
    }

    #[test]
    fn truthy_conditions() {
        let env = ConstEnv::top(0);
        assert_eq!(
            env.eval_cond(&Cond::Truthy(Operand::Const(Const::Bool(true)))),
            Some(true)
        );
        assert_eq!(
            env.eval_cond(&Cond::Falsy(Operand::Const(Const::Int(0)))),
            Some(true)
        );
        assert_eq!(env.eval_cond(&Cond::Truthy(Operand::Local(lid(9)))), None);
    }

    #[test]
    fn string_equality_of_same_literal() {
        let mut i = spo_jir::Interner::new();
        let s = Const::Str(i.intern("ISO-8859-1"));
        let env = ConstEnv::top(0);
        let cond = Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Operand::Const(s),
            rhs: Operand::Const(s),
        };
        assert_eq!(env.eval_cond(&cond), Some(true));
        // Different literals: identity unknown -> None.
        let s2 = Const::Str(i.intern("UTF-8"));
        let cond2 = Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Operand::Const(s),
            rhs: Operand::Const(s2),
        };
        assert_eq!(env.eval_cond(&cond2), None);
    }

    #[test]
    fn transfer_assign_and_clobber() {
        let mut env = ConstEnv::top(2);
        env.transfer(&Stmt::Assign {
            dst: lid(0),
            value: Expr::Operand(Operand::Const(Const::Int(5))),
        });
        assert_eq!(env.get(lid(0)), AbsVal::Val(Const::Int(5)));
        let mut i = spo_jir::Interner::new();
        env.transfer(&Stmt::Invoke {
            dst: Some(lid(0)),
            call: spo_jir::Call {
                kind: spo_jir::InvokeKind::Static,
                receiver: None,
                callee: spo_jir::MethodRef {
                    class: i.intern("C"),
                    name: i.intern("m"),
                    argc: 0,
                },
                args: vec![],
            },
        });
        assert_eq!(env.get(lid(0)), AbsVal::Bottom);
    }

    #[test]
    fn entry_env_params_bottom() {
        let env = ConstEnv::entry(4, 2);
        assert_eq!(env.get(lid(0)), AbsVal::Bottom);
        assert_eq!(env.get(lid(1)), AbsVal::Bottom);
        assert_eq!(env.get(lid(2)), AbsVal::Top);
    }

    #[test]
    fn env_join_pointwise() {
        let mut a = ConstEnv::top(2);
        a.set(lid(0), AbsVal::Val(Const::Int(1)));
        a.set(lid(1), AbsVal::Val(Const::Int(2)));
        let mut b = ConstEnv::top(2);
        b.set(lid(0), AbsVal::Val(Const::Int(1)));
        b.set(lid(1), AbsVal::Val(Const::Int(3)));
        assert!(a.join(&b));
        assert_eq!(a.get(lid(0)), AbsVal::Val(Const::Int(1)));
        assert_eq!(a.get(lid(1)), AbsVal::Bottom);
    }
}
