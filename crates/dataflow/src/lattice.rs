//! Lattices for the security-policy dataflow analyses.
//!
//! The paper's dataflow lattice is "the power set of the 31
//! security-checking methods" (§4). [`BitSet32`] is that powerset;
//! [`MustSet`] adds the ⊤ (not-yet-visited) element needed by the
//! intersection-based MUST analysis; [`Dnf`] is the disjunctive MAY value
//! that reproduces Figure 2's `{{checkMulticast},{checkConnect,
//! checkAccept}}` policies.

use std::fmt;

/// A join-semilattice value: `join` merges another value in, returning
/// whether anything changed. Used by the worklist engine's convergence
/// test.
pub trait JoinLattice: Clone + PartialEq {
    /// Merges `other` into `self`; returns `true` if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// A set over at most 32 elements, stored as a `u32` bit mask.
///
/// # Examples
///
/// ```
/// use spo_dataflow::BitSet32;
///
/// let mut s = BitSet32::empty();
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitSet32(u32);

impl BitSet32 {
    /// The empty set.
    pub const fn empty() -> Self {
        BitSet32(0)
    }

    /// Constructs from a raw mask.
    pub const fn from_bits(bits: u32) -> Self {
        BitSet32(bits)
    }

    /// The raw mask.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Singleton set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn singleton(i: u8) -> Self {
        assert!(i < 32, "BitSet32 index out of range");
        BitSet32(1 << i)
    }

    /// Adds element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn insert(&mut self, i: u8) {
        assert!(i < 32, "BitSet32 index out of range");
        self.0 |= 1 << i;
    }

    /// Membership test.
    pub fn contains(self, i: u8) -> bool {
        i < 32 && self.0 & (1 << i) != 0
    }

    /// Set union.
    pub const fn union(self, other: Self) -> Self {
        BitSet32(self.0 | other.0)
    }

    /// Set intersection.
    pub const fn intersect(self, other: Self) -> Self {
        BitSet32(self.0 & other.0)
    }

    /// Elements in `self` but not `other`.
    pub const fn difference(self, other: Self) -> Self {
        BitSet32(self.0 & !other.0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub const fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of elements.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Emptiness test.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over element indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..32u8).filter(move |&i| self.contains(i))
    }
}

impl fmt::Debug for BitSet32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u8> for BitSet32 {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        let mut s = BitSet32::empty();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl JoinLattice for BitSet32 {
    /// Join for the MAY direction: set union.
    fn join(&mut self, other: &Self) -> bool {
        let before = self.0;
        self.0 |= other.0;
        self.0 != before
    }
}

/// The MUST-analysis value: a [`BitSet32`] extended with ⊤.
///
/// ⊤ ("not yet visited") is the identity of intersection; the paper's
/// Algorithm 1 initializes MUST `OUT` values to ⊤ so that the first visit
/// replaces rather than empties them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MustSet {
    /// Not yet visited: the universe, identity of ∩.
    #[default]
    Top,
    /// A concrete set of checks guaranteed on every path.
    Set(BitSet32),
}

impl MustSet {
    /// The concrete set, treating ⊤ as the given universe-less empty view.
    ///
    /// ⊤ only survives to the end for unreachable events; callers decide how
    /// to read it. [`MustSet::unwrap_or_empty`] is the common conservative
    /// choice.
    pub fn as_set(self) -> Option<BitSet32> {
        match self {
            MustSet::Top => None,
            MustSet::Set(s) => Some(s),
        }
    }

    /// The concrete set, with ⊤ read as ∅ (conservative: no check
    /// guaranteed).
    pub fn unwrap_or_empty(self) -> BitSet32 {
        self.as_set().unwrap_or_default()
    }

    /// Adds a check to the set (gen). ⊤ stays ⊤ — gen on an unreachable
    /// state is meaningless and the engine never does it.
    pub fn insert(&mut self, i: u8) {
        if let MustSet::Set(s) = self {
            s.insert(i);
        }
    }
}

impl JoinLattice for MustSet {
    /// Join for the MUST direction: set intersection, with ⊤ as identity.
    fn join(&mut self, other: &Self) -> bool {
        match (*self, other) {
            (_, MustSet::Top) => false,
            (MustSet::Top, MustSet::Set(s)) => {
                *self = MustSet::Set(*s);
                true
            }
            (MustSet::Set(a), MustSet::Set(b)) => {
                let joined = a.intersect(*b);
                let changed = joined != a;
                *self = MustSet::Set(joined);
                changed
            }
        }
    }
}

/// Maximum number of disjuncts a [`Dnf`] holds before widening.
pub const DNF_WIDTH: usize = 64;

/// A disjunction of check sets: the MAY-policy value.
///
/// Where a flat union records *which* checks may precede an event, a `Dnf`
/// records the distinct per-path check sets — e.g. Figure 2's
/// `{{checkMulticast}, {checkConnect, checkAccept}}`. This distinction is
/// what lets differencing catch the Figure 1 vulnerability: the flat unions
/// `{checkMulticast, checkConnect, checkAccept}` vs `{checkMulticast,
/// checkConnect}` differ too, but only because the missing check never
/// appears anywhere; a check missing from one *path* while present via
/// another path is invisible to flat unions.
///
/// The empty disjunction (no paths known) is ⊥/unvisited; the singleton
/// `{∅}` is "one path with no checks".
///
/// Invariant: disjuncts are sorted and deduplicated. When the disjunct count
/// would exceed [`DNF_WIDTH`], the value widens to the singleton of its flat
/// union — a deterministic, conservative collapse.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct Dnf {
    disjuncts: Vec<BitSet32>,
}

impl Dnf {
    /// The bottom element: no paths.
    pub fn bottom() -> Self {
        Dnf::default()
    }

    /// A single path carrying the given check set.
    pub fn of(set: BitSet32) -> Self {
        Dnf {
            disjuncts: vec![set],
        }
    }

    /// The single empty path — the entry state of the MAY analysis.
    pub fn empty_path() -> Self {
        Dnf::of(BitSet32::empty())
    }

    /// The disjuncts, sorted ascending.
    pub fn disjuncts(&self) -> &[BitSet32] {
        &self.disjuncts
    }

    /// Returns `true` if no path has been recorded (⊥).
    pub fn is_bottom(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Union of all disjuncts: the flat MAY set.
    pub fn flat_union(&self) -> BitSet32 {
        self.disjuncts
            .iter()
            .fold(BitSet32::empty(), |acc, &d| acc.union(d))
    }

    /// Intersection of all disjuncts: the MUST view implied by this MAY
    /// value (∅ for ⊥).
    pub fn must_view(&self) -> BitSet32 {
        let mut it = self.disjuncts.iter();
        match it.next() {
            None => BitSet32::empty(),
            Some(&first) => it.fold(first, |acc, &d| acc.intersect(d)),
        }
    }

    /// Adds check `i` to every path (the gen operation at a check
    /// statement).
    pub fn gen(&mut self, i: u8) {
        for d in &mut self.disjuncts {
            d.insert(i);
        }
        self.normalize();
    }

    fn normalize(&mut self) {
        self.disjuncts.sort_unstable();
        self.disjuncts.dedup();
        if self.disjuncts.len() > DNF_WIDTH {
            let flat = self.flat_union();
            self.disjuncts = vec![flat];
        }
    }
}

impl JoinLattice for Dnf {
    /// Join for the MAY direction: union of path sets.
    fn join(&mut self, other: &Self) -> bool {
        let before_len = self.disjuncts.len();
        let before_last = self.disjuncts.clone();
        self.disjuncts.extend_from_slice(&other.disjuncts);
        self.normalize();
        self.disjuncts.len() != before_len || self.disjuncts != before_last
    }
}

impl FromIterator<BitSet32> for Dnf {
    fn from_iter<T: IntoIterator<Item = BitSet32>>(iter: T) -> Self {
        let mut d = Dnf {
            disjuncts: iter.into_iter().collect(),
        };
        d.normalize();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(v: &[u8]) -> BitSet32 {
        v.iter().copied().collect()
    }

    #[test]
    fn bitset_basics() {
        let a = bs(&[1, 3]);
        let b = bs(&[3, 5]);
        assert_eq!(a.union(b), bs(&[1, 3, 5]));
        assert_eq!(a.intersect(b), bs(&[3]));
        assert_eq!(a.difference(b), bs(&[1]));
        assert!(bs(&[3]).is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!(a.len(), 2);
        assert!(BitSet32::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitset_rejects_large_index() {
        BitSet32::singleton(32);
    }

    #[test]
    fn bitset_join_is_union() {
        let mut a = bs(&[1]);
        assert!(a.join(&bs(&[2])));
        assert_eq!(a, bs(&[1, 2]));
        assert!(!a.join(&bs(&[1])));
    }

    #[test]
    fn mustset_join_is_intersection_with_top_identity() {
        let mut m = MustSet::Top;
        assert!(m.join(&MustSet::Set(bs(&[1, 2]))));
        assert_eq!(m, MustSet::Set(bs(&[1, 2])));
        assert!(m.join(&MustSet::Set(bs(&[2, 3]))));
        assert_eq!(m, MustSet::Set(bs(&[2])));
        assert!(!m.join(&MustSet::Top));
        assert_eq!(m, MustSet::Set(bs(&[2])));
    }

    #[test]
    fn mustset_gen_ignored_on_top() {
        let mut m = MustSet::Top;
        m.insert(5);
        assert_eq!(m, MustSet::Top);
        let mut m = MustSet::Set(BitSet32::empty());
        m.insert(5);
        assert_eq!(m, MustSet::Set(bs(&[5])));
    }

    #[test]
    fn dnf_models_figure_2() {
        // Path 1 performs checkMulticast (bit 0); path 2 performs
        // checkConnect (1) and checkAccept (2).
        let mut path1 = Dnf::empty_path();
        path1.gen(0);
        let mut path2 = Dnf::empty_path();
        path2.gen(1);
        path2.gen(2);
        let mut joined = path1;
        joined.join(&path2);
        assert_eq!(joined.disjuncts(), &[bs(&[0]), bs(&[1, 2])]);
        assert_eq!(joined.flat_union(), bs(&[0, 1, 2]));
        assert_eq!(joined.must_view(), BitSet32::empty());
    }

    #[test]
    fn dnf_gen_applies_to_all_paths() {
        let mut d: Dnf = [bs(&[0]), bs(&[1])].into_iter().collect();
        d.gen(5);
        assert_eq!(d.disjuncts(), &[bs(&[0, 5]), bs(&[1, 5])]);
        assert_eq!(d.must_view(), bs(&[5]));
    }

    #[test]
    fn dnf_join_dedupes() {
        let mut a = Dnf::of(bs(&[1]));
        let changed = a.join(&Dnf::of(bs(&[1])));
        assert!(!changed);
        assert_eq!(a.disjuncts().len(), 1);
    }

    #[test]
    fn dnf_gen_can_merge_paths() {
        // {{},{3}} after gen(3) collapses to {{3}}.
        let mut d: Dnf = [BitSet32::empty(), bs(&[3])].into_iter().collect();
        d.gen(3);
        assert_eq!(d.disjuncts(), &[bs(&[3])]);
    }

    #[test]
    fn dnf_widens_at_capacity() {
        // 65 distinct singletons exceed DNF_WIDTH and collapse to the union.
        let disjuncts: Vec<BitSet32> = (0..=12u8)
            .flat_map(|a| (13..=17u8).map(move |b| bs(&[a, b])))
            .collect();
        assert!(disjuncts.len() > DNF_WIDTH);
        let d: Dnf = disjuncts.into_iter().collect();
        assert_eq!(d.disjuncts().len(), 1);
        assert_eq!(d.disjuncts()[0], bs(&(0..=17).collect::<Vec<_>>()));
    }

    #[test]
    fn dnf_bottom_is_join_identity() {
        let mut b = Dnf::bottom();
        let v: Dnf = [bs(&[2])].into_iter().collect();
        assert!(b.join(&v));
        assert_eq!(b, v);
        let mut v2 = v.clone();
        assert!(!v2.join(&Dnf::bottom()));
        assert_eq!(v2, v);
    }

    #[test]
    fn must_view_of_bottom_is_empty() {
        assert_eq!(Dnf::bottom().must_view(), BitSet32::empty());
        assert_eq!(Dnf::bottom().flat_union(), BitSet32::empty());
    }
}
