//! Data-dependence ("event tag") propagation.
//!
//! The paper's fully broad definition of security-sensitive events (§3)
//! marks not just direct accesses to API parameters and private variables
//! but "reads, writes, and method invocations on variables that are
//! data-dependent on API parameters and private variables", computed by
//! propagating an event tag through def-use chains. This module provides
//! that propagation over one body: seed locals are tainted, assignments
//! spread taint through operands, and the per-statement fixpoint reports
//! which statements touch tainted data. The paper used this definition to
//! *diagnose* policy differences (it found no additional JCL bugs); the
//! oracle's broad event mode uses direct accesses, and this analysis backs
//! the diagnosis workflow.

use crate::engine::{run_forward, Flow, ForwardAnalysis};
use crate::lattice::JoinLattice;
use spo_jir::{Body, Cfg, Expr, LocalId, Operand, Stmt};

/// A set of tainted locals (dense bitvector).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaintSet {
    bits: Vec<bool>,
}

impl TaintSet {
    /// An empty set over `n` locals.
    pub fn empty(n: usize) -> Self {
        TaintSet {
            bits: vec![false; n],
        }
    }

    /// Marks a local tainted.
    pub fn insert(&mut self, l: LocalId) {
        if let Some(b) = self.bits.get_mut(l.index()) {
            *b = true;
        }
    }

    /// Membership test.
    pub fn contains(&self, l: LocalId) -> bool {
        self.bits.get(l.index()).copied().unwrap_or(false)
    }

    /// Clears a local (strong update on untainted assignment).
    pub fn remove(&mut self, l: LocalId) {
        if let Some(b) = self.bits.get_mut(l.index()) {
            *b = false;
        }
    }

    /// Number of tainted locals.
    pub fn len(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Returns `true` if no local is tainted.
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|b| *b)
    }
}

impl JoinLattice for TaintSet {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            if *b && !*a {
                *a = true;
                changed = true;
            }
        }
        changed
    }
}

struct TaintAnalysis {
    seeds: TaintSet,
}

impl ForwardAnalysis for TaintAnalysis {
    type State = TaintSet;

    fn boundary(&mut self) -> TaintSet {
        self.seeds.clone()
    }

    fn transfer(&mut self, _idx: usize, stmt: &Stmt, input: &TaintSet) -> Flow<TaintSet> {
        let mut out = input.clone();
        let operand_tainted = |o: &Operand, s: &TaintSet| match o {
            Operand::Local(l) => s.contains(*l),
            Operand::Const(_) => false,
        };
        match stmt {
            Stmt::Assign { dst, value } => {
                let tainted = match value {
                    Expr::Operand(o)
                    | Expr::Unary { operand: o, .. }
                    | Expr::Cast { operand: o, .. }
                    | Expr::InstanceOf { operand: o, .. } => operand_tainted(o, input),
                    Expr::Binary { lhs, rhs, .. } => {
                        operand_tainted(lhs, input) || operand_tainted(rhs, input)
                    }
                    // Reading a field of a tainted object yields tainted
                    // data; reads of other fields are fresh.
                    Expr::FieldLoad(t) => match t {
                        spo_jir::FieldTarget::Instance(r, _) => input.contains(*r),
                        spo_jir::FieldTarget::Static(_) => false,
                    },
                    Expr::ArrayLoad { array, index } => {
                        input.contains(*array) || operand_tainted(index, input)
                    }
                    Expr::New(_) | Expr::NewArray { .. } => false,
                };
                if tainted {
                    out.insert(*dst);
                } else {
                    out.remove(*dst);
                }
            }
            Stmt::Invoke { dst: Some(d), call } => {
                // Conservative: a call on tainted data returns tainted
                // data (the paper's tag propagates through parameter
                // binding; intraprocedurally we over-approximate).
                let tainted = call.receiver.map(|r| input.contains(r)).unwrap_or(false)
                    || call.args.iter().any(|a| operand_tainted(a, input));
                if tainted {
                    out.insert(*d);
                } else {
                    out.remove(*d);
                }
            }
            _ => {}
        }
        Flow::Uniform(out)
    }
}

/// Computes, per statement, the set of locals data-dependent on `seeds` at
/// statement entry. Unreachable statements get `None`.
pub fn data_dependence(body: &Body, cfg: &Cfg, seeds: &[LocalId]) -> Vec<Option<TaintSet>> {
    let mut seed_set = TaintSet::empty(body.locals.len());
    for &s in seeds {
        seed_set.insert(s);
    }
    let mut analysis = TaintAnalysis { seeds: seed_set };
    run_forward(body, cfg, &mut analysis).inputs
}

/// Statement indices that *touch* tainted data: read a tainted local or
/// define a local from tainted inputs — the paper's "very liberal" event
/// set.
pub fn tainted_statements(body: &Body, cfg: &Cfg, seeds: &[LocalId]) -> Vec<usize> {
    let states = data_dependence(body, cfg, seeds);
    let mut out = Vec::new();
    for (i, stmt) in body.stmts.iter().enumerate() {
        let Some(st) = &states[i] else { continue };
        if stmt.read_locals().iter().any(|l| st.contains(*l)) {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_jir::parse_program;

    fn run(src: &str, seed_names: &[&str]) -> (Body, Vec<Option<TaintSet>>, Vec<usize>) {
        let p = parse_program(src).unwrap();
        let c = p.class_by_str("C").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap().clone();
        let cfg = body.cfg();
        let seeds: Vec<LocalId> = body
            .locals
            .iter()
            .enumerate()
            .filter(|(_, l)| seed_names.contains(&p.str(l.name)))
            .map(|(i, _)| LocalId(i as u32))
            .collect();
        assert_eq!(seeds.len(), seed_names.len(), "all seeds found");
        let dep = data_dependence(&body, &cfg, &seeds);
        let touched = tainted_statements(&body, &cfg, &seeds);
        (body, dep, touched)
    }

    #[test]
    fn taint_flows_through_assignment_chain() {
        let (body, dep, _) = run(
            "class C { method public static void m(int p) {
               local int a, b;
               a = p + 1;
               b = a * 2;
               return;
             } }",
            &["p"],
        );
        let last = dep[body.stmts.len() - 1].as_ref().unwrap();
        // p (0), a (1), b (2) all tainted at the return.
        assert!(last.contains(LocalId(0)));
        assert!(last.contains(LocalId(1)));
        assert!(last.contains(LocalId(2)));
        assert_eq!(last.len(), 3);
    }

    #[test]
    fn fresh_assignment_clears_taint() {
        let (body, dep, _) = run(
            "class C { method public static void m(int p) {
               local int a;
               a = p;
               a = 7;
               return;
             } }",
            &["p"],
        );
        let last = dep[body.stmts.len() - 1].as_ref().unwrap();
        assert!(
            !last.contains(LocalId(1)),
            "a was overwritten by a constant"
        );
    }

    #[test]
    fn taint_joins_at_merge_points() {
        let (body, dep, _) = run(
            "class C { method public static void m(int p, bool c) {
               local int a;
               if c goto other;
               a = 5;
               goto done;
             other:
               a = p;
             done:
               return;
             } }",
            &["p"],
        );
        let last = dep[body.stmts.len() - 1].as_ref().unwrap();
        assert!(last.contains(LocalId(2)), "a may be tainted at the join");
    }

    #[test]
    fn calls_propagate_taint_to_results() {
        let (body, dep, _) = run(
            "class C { method public static void m(java.lang.String p) {
               local java.lang.String s;
               s = staticinvoke C.id(p);
               return;
             }
             method public static java.lang.String id(java.lang.String x) {
               return x;
             } }",
            &["p"],
        );
        let last = dep[body.stmts.len() - 1].as_ref().unwrap();
        assert!(last.contains(LocalId(1)));
    }

    #[test]
    fn tainted_statements_reports_touches() {
        let (_, _, touched) = run(
            "class C { method public static void m(int p) {
               local int a, b;
               b = 3;
               a = p + 1;
               b = b * 2;
               return;
             } }",
            &["p"],
        );
        // Statement 1 (`a = p + 1`) touches p; statement 0 and 2 do not.
        assert_eq!(touched, vec![1]);
    }

    #[test]
    fn field_load_from_tainted_receiver_is_tainted() {
        let (body, dep, _) = run(
            "class C { field private int f;
             method public static void m(C p) {
               local int v;
               v = p.f;
               return;
             } }",
            &["p"],
        );
        let last = dep[body.stmts.len() - 1].as_ref().unwrap();
        assert!(last.contains(LocalId(1)));
    }

    #[test]
    fn loop_converges_with_taint_growth() {
        let (body, dep, _) = run(
            "class C { method public static void m(int p, bool c) {
               local int a, b;
               a = 0;
             top:
               b = a;
               a = p;
               if c goto top;
               return;
             } }",
            &["p"],
        );
        // After the loop, both a and b may carry p.
        let last = dep[body.stmts.len() - 1].as_ref().unwrap();
        assert!(last.contains(LocalId(2)) && last.contains(LocalId(3)));
    }
}
