//! Intraprocedural may-alias analysis.
//!
//! The paper uses Soot's alias analysis as part of its substrate (§4).
//! This module supplies the equivalent at the granularity JIR needs: a
//! flow-insensitive, unification-based (Steensgaard-style) partition of a
//! body's reference locals. Locals connected by copies, casts, or the
//! same call result share an alias class; a `new` introduces a fresh
//! object identity. Clients use it to ask whether two locals may denote
//! the same object — e.g. whether a field write through one local can be
//! observed through another.

use spo_jir::{Body, Expr, LocalId, Operand, Stmt, Type};

/// Union–find partition of a body's locals into may-alias classes.
///
/// # Examples
///
/// ```
/// use spo_dataflow::AliasClasses;
///
/// let p = spo_jir::parse_program(
///     "class C { method public static void m(C a) {
///        local C b, c;
///        b = a;
///        c = new C;
///        return;
///      } }",
/// ).unwrap();
/// let cid = p.class_by_str("C").unwrap();
/// let body = p.class(cid).methods[0].body.as_ref().unwrap();
/// let alias = AliasClasses::new(body);
/// use spo_jir::LocalId;
/// assert!(alias.may_alias(LocalId(0), LocalId(1)));  // b = a
/// assert!(!alias.may_alias(LocalId(0), LocalId(2))); // c is fresh
/// ```
#[derive(Clone, Debug)]
pub struct AliasClasses {
    parent: Vec<usize>,
    /// Locals that were ever assigned a fresh allocation *and nothing
    /// else*; two distinct-allocation classes never alias.
    is_ref: Vec<bool>,
}

impl AliasClasses {
    /// Builds the partition for `body`.
    pub fn new(body: &Body) -> Self {
        let n = body.locals.len();
        let mut this = AliasClasses {
            parent: (0..n).collect(),
            is_ref: body.locals.iter().map(|l| l.ty.is_ref()).collect(),
        };
        for stmt in &body.stmts {
            match stmt {
                Stmt::Assign { dst, value } => match value {
                    Expr::Operand(Operand::Local(src))
                    | Expr::Cast {
                        operand: Operand::Local(src),
                        ..
                    } if this.is_ref(*dst) && this.is_ref(*src) => {
                        this.union(dst.index(), src.index());
                    }
                    // Array loads may surface any element stored into the
                    // array: unify with the array local (coarse but sound).
                    Expr::ArrayLoad { array, .. } if this.is_ref(*dst) => {
                        this.union(dst.index(), array.index());
                    }
                    _ => {}
                },
                Stmt::ArrayStore {
                    array,
                    value: Operand::Local(v),
                    ..
                } if this.is_ref(*v) => {
                    this.union(array.index(), v.index());
                }
                // A call result is a fresh handle: no unification (the
                // callee's aliasing is out of scope intraprocedurally,
                // mirroring Soot's per-body alias queries).
                _ => {}
            }
        }
        this
    }

    fn is_ref(&self, l: LocalId) -> bool {
        self.is_ref.get(l.index()).copied().unwrap_or(false)
    }

    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Returns `true` if the two locals may denote the same object.
    /// Primitive locals never alias. A local aliases itself if it is a
    /// reference.
    pub fn may_alias(&self, a: LocalId, b: LocalId) -> bool {
        if !self.is_ref(a) || !self.is_ref(b) {
            return false;
        }
        self.find(a.index()) == self.find(b.index())
    }

    /// The representative of a local's alias class.
    pub fn class_of(&self, l: LocalId) -> usize {
        self.find(l.index())
    }

    /// Number of distinct alias classes among reference locals.
    pub fn class_count(&self) -> usize {
        let mut reps: Vec<usize> = (0..self.parent.len())
            .filter(|&i| self.is_ref[i])
            .map(|i| self.find(i))
            .collect();
        reps.sort_unstable();
        reps.dedup();
        reps.len()
    }
}

/// Convenience: `true` when `ty` locals can participate in aliasing.
pub fn is_aliasable(ty: &Type) -> bool {
    ty.is_ref()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spo_jir::parse_program;

    fn classes(src: &str) -> (spo_jir::Program, AliasClasses) {
        let p = parse_program(src).unwrap();
        let c = p.class_by_str("C").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap();
        let a = AliasClasses::new(body);
        (p, a)
    }

    fn lid(i: u32) -> LocalId {
        LocalId(i)
    }

    #[test]
    fn copies_unify() {
        let (_, a) = classes(
            "class C { method public static void m(C p) {
               local C x, y;
               x = p;
               y = x;
               return;
             } }",
        );
        assert!(a.may_alias(lid(0), lid(1)));
        assert!(a.may_alias(lid(0), lid(2)));
        assert!(a.may_alias(lid(1), lid(2)));
    }

    #[test]
    fn fresh_allocations_do_not_alias_params() {
        let (_, a) = classes(
            "class C { method public static void m(C p) {
               local C x;
               x = new C;
               return;
             } }",
        );
        assert!(!a.may_alias(lid(0), lid(1)));
        assert_eq!(a.class_count(), 2);
    }

    #[test]
    fn casts_preserve_aliasing() {
        let (_, a) = classes(
            "class D { }
             class C { method public static void m(C p) {
               local D x;
               x = (D) p;
               return;
             } }",
        );
        assert!(a.may_alias(lid(0), lid(1)));
    }

    #[test]
    fn primitives_never_alias() {
        let (_, a) = classes(
            "class C { method public static void m(int p) {
               local int x;
               x = p;
               return;
             } }",
        );
        assert!(!a.may_alias(lid(0), lid(1)));
        assert!(!a.may_alias(lid(0), lid(0)));
    }

    #[test]
    fn array_store_then_load_aliases_through_the_array() {
        let (_, a) = classes(
            "class C { method public static void m(C p) {
               local C[] arr;
               local C out;
               arr = newarray C [2];
               arr[0] = p;
               out = arr[0];
               return;
             } }",
        );
        assert!(
            a.may_alias(lid(0), lid(2)),
            "p flows through the array to out"
        );
    }

    #[test]
    fn call_results_are_independent_handles() {
        let (_, a) = classes(
            "class C { method public static void m(C p) {
               local C x;
               x = staticinvoke C.make();
               return;
             }
             method public static C make() {
               local C c;
               c = new C;
               return c;
             } }",
        );
        assert!(!a.may_alias(lid(0), lid(1)));
    }

    #[test]
    fn self_alias_for_refs() {
        let (_, a) = classes("class C { method public static void m(C p) { return; } }");
        assert!(a.may_alias(lid(0), lid(0)));
    }
}
