//! # spo-dataflow — lattices, worklist engine, constant propagation
//!
//! The dataflow substrate of the security policy oracle. The paper's SPDA
//! (Algorithm 1) is "essentially a reaching definitions analysis where the
//! definitions are security checks and the uses are security-sensitive
//! events", over "the power set of the 31 security-checking methods",
//! enhanced with Wegman–Zadeck-style conditional constant propagation.
//! This crate supplies those pieces generically:
//!
//! * [`BitSet32`] — the 31-check powerset; [`MustSet`] — the ∩-joined MUST
//!   value with ⊤; [`Dnf`] — the disjunctive MAY value of Figure 2;
//! * [`ConstEnv`]/[`AbsVal`] — conditional constant propagation with `null`
//!   tracking and branch folding (Figure 4's `handler != null`);
//! * [`run_forward`] — the worklist engine with dead-edge suppression.
//!
//! # Examples
//!
//! ```
//! use spo_dataflow::{BitSet32, Dnf, JoinLattice};
//!
//! // The Figure 2 may-policy: {{checkMulticast}, {checkConnect, checkAccept}}.
//! let mut multicast_path = Dnf::empty_path();
//! multicast_path.gen(0);
//! let mut connect_path = Dnf::empty_path();
//! connect_path.gen(1);
//! connect_path.gen(2);
//! let mut policy = multicast_path;
//! policy.join(&connect_path);
//! assert_eq!(policy.disjuncts().len(), 2);
//! assert_eq!(policy.must_view(), BitSet32::empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alias;
mod constprop;
mod engine;
mod lattice;
mod taint;

pub use alias::{is_aliasable, AliasClasses};
pub use constprop::{AbsVal, ConstEnv};
pub use engine::{
    run_forward, run_forward_governed, run_forward_traced, DataflowResults, FixpointStats, Flow,
    ForwardAnalysis,
};
pub use lattice::{BitSet32, Dnf, JoinLattice, MustSet, DNF_WIDTH};
pub use taint::{data_dependence, tainted_statements, TaintSet};
