//! The forward worklist dataflow engine.
//!
//! Implements the paper's Algorithm 1 skeleton generically: a worklist over
//! statement indices, per-statement IN states, monotone joins, and — the
//! piece vanilla reaching-definitions lacks — *edge-level* transfer results
//! so constant propagation can suppress unexecutable branch edges
//! ([`Flow::Branch`] with a `None` side).

use crate::lattice::JoinLattice;
use spo_guard::Governor;
use spo_jir::{Body, Cfg, Stmt};
use std::collections::VecDeque;

/// The result of transferring one statement: what flows to its successors.
#[derive(Clone, Debug)]
pub enum Flow<S> {
    /// The same state flows to every successor.
    Uniform(S),
    /// A conditional branch: `taken` flows to the branch target, `fall` to
    /// the fall-through successor. `None` marks a provably dead edge.
    Branch {
        /// State on the taken edge, if live.
        taken: Option<S>,
        /// State on the fall-through edge, if live.
        fall: Option<S>,
    },
}

/// A forward dataflow analysis over one body.
pub trait ForwardAnalysis {
    /// The dataflow state attached to each program point.
    type State: JoinLattice;

    /// The state on entry to statement 0.
    fn boundary(&mut self) -> Self::State;

    /// Applies statement `stmt` (at index `idx`) to `input`, producing the
    /// state(s) for its successors. Only `Stmt::If` may meaningfully return
    /// [`Flow::Branch`]; other statements should return [`Flow::Uniform`].
    fn transfer(&mut self, idx: usize, stmt: &Stmt, input: &Self::State) -> Flow<Self::State>;
}

/// Fixpoint results: the IN state of every statement. `None` means the
/// statement is unreachable (never visited — either CFG-unreachable or on
/// edges constant propagation proved dead).
#[derive(Clone, Debug)]
pub struct DataflowResults<S> {
    /// IN state per statement index.
    pub inputs: Vec<Option<S>>,
}

impl<S> DataflowResults<S> {
    /// The IN state of statement `i`, if reachable.
    pub fn input(&self, i: usize) -> Option<&S> {
        self.inputs.get(i).and_then(Option::as_ref)
    }

    /// Indices of statements proven unreachable.
    pub fn unreachable(&self) -> impl Iterator<Item = usize> + '_ {
        self.inputs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
    }
}

/// Cost accounting for one fixpoint run, independent of any metrics
/// backend: a plain struct the caller can fold into whatever observability
/// layer it uses. The counts are a pure function of `(body, analysis)` —
/// the worklist order is deterministic — so aggregating them per memoized
/// frame stays schedule-independent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FixpointStats {
    /// Transfer-function applications (worklist pops).
    pub transfers: u64,
    /// Distinct statements visited at least once (reachable statements).
    pub visited: u64,
    /// Statements in the body.
    pub stmts: u64,
}

impl FixpointStats {
    /// Average worklist passes over the reachable statements — the paper's
    /// "converges in two passes" claim made measurable (1.0 = each
    /// reachable statement transferred exactly once).
    pub fn passes(&self) -> f64 {
        if self.visited == 0 {
            0.0
        } else {
            self.transfers as f64 / self.visited as f64
        }
    }
}

/// Runs `analysis` to fixpoint over `body`, returning per-statement IN
/// states.
///
/// The worklist is seeded with the entry statement and iterates in
/// reverse-post-order priority; on structured control flow this converges in
/// the two passes the paper cites for SPDA.
pub fn run_forward<A: ForwardAnalysis>(
    body: &Body,
    cfg: &Cfg,
    analysis: &mut A,
) -> DataflowResults<A::State> {
    run_forward_traced(body, cfg, analysis).0
}

/// Like [`run_forward`], additionally returning the [`FixpointStats`] cost
/// accounting for the run.
pub fn run_forward_traced<A: ForwardAnalysis>(
    body: &Body,
    cfg: &Cfg,
    analysis: &mut A,
) -> (DataflowResults<A::State>, FixpointStats) {
    run_forward_governed(body, cfg, analysis, &Governor::unlimited())
}

/// Like [`run_forward_traced`], under a [`Governor`]: every worklist pop
/// checks the solve-local transfer count against the step budget (and,
/// periodically, the cancel token and deadline). Exhaustion *trips* — it
/// raises an [`Interrupt`](spo_guard::Interrupt) unwind that the caller's
/// per-root [`quarantine`](spo_guard::quarantine) boundary converts into a
/// structured fault — so a pathological fixpoint degrades one root instead
/// of hanging the run.
pub fn run_forward_governed<A: ForwardAnalysis>(
    body: &Body,
    cfg: &Cfg,
    analysis: &mut A,
    governor: &Governor,
) -> (DataflowResults<A::State>, FixpointStats) {
    // Flight-recorder visibility: one complete event per fixpoint solve on
    // whatever trace lane the calling worker has bound (a no-op guard when
    // tracing is off). Purely wall-clock — the solve itself, and with it
    // `FixpointStats`, stays a pure function of (body, analysis).
    let _trace = spo_obs::trace::span_now("fixpoint", "dataflow");
    let n = body.stmts.len();
    let mut stats = FixpointStats {
        stmts: n as u64,
        ..FixpointStats::default()
    };
    let mut inputs: Vec<Option<A::State>> = vec![None; n];
    if n == 0 {
        return (DataflowResults { inputs }, stats);
    }
    // RPO priority: lower rank first.
    let rpo = cfg.reverse_post_order();
    let mut rank = vec![usize::MAX; n];
    for (r, &i) in rpo.iter().enumerate() {
        rank[i] = r;
    }
    inputs[0] = Some(analysis.boundary());
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; n];
    queue.push_back(0);
    queued[0] = true;

    // Merge `state` into IN[succ]; enqueue on change.
    let apply = |inputs: &mut Vec<Option<A::State>>,
                 queue: &mut VecDeque<usize>,
                 queued: &mut Vec<bool>,
                 succ: usize,
                 state: &A::State| {
        let changed = match &mut inputs[succ] {
            Some(existing) => existing.join(state),
            slot @ None => {
                *slot = Some(state.clone());
                true
            }
        };
        if changed && !queued[succ] {
            queued[succ] = true;
            queue.push_back(succ);
        }
    };

    while let Some(i) = pop_min_rank(&mut queue, &rank) {
        queued[i] = false;
        governor.check_step(stats.transfers);
        stats.transfers += 1;
        let input = inputs[i].clone().expect("queued statement must have input");
        let flow = analysis.transfer(i, &body.stmts[i], &input);
        match flow {
            Flow::Uniform(out) => {
                for &s in cfg.succs(i) {
                    apply(&mut inputs, &mut queue, &mut queued, s, &out);
                }
            }
            Flow::Branch { taken, fall } => {
                let Stmt::If { target, .. } = &body.stmts[i] else {
                    panic!("Flow::Branch returned for non-branch statement {i}");
                };
                for &s in cfg.succs(i) {
                    if s == *target {
                        if let Some(t) = &taken {
                            apply(&mut inputs, &mut queue, &mut queued, s, t);
                        }
                    }
                    if s == i + 1 && s != *target {
                        if let Some(f) = &fall {
                            apply(&mut inputs, &mut queue, &mut queued, s, f);
                        }
                    }
                    // When target == i + 1 both edges reach the same
                    // successor; apply the fall state too.
                    if s == *target && *target == i + 1 {
                        if let Some(f) = &fall {
                            apply(&mut inputs, &mut queue, &mut queued, s, f);
                        }
                    }
                }
            }
        }
    }
    stats.visited = inputs.iter().filter(|s| s.is_some()).count() as u64;
    (DataflowResults { inputs }, stats)
}

/// Pops the queued statement with the smallest RPO rank (approximate
/// priority queue; the queue is small in practice).
fn pop_min_rank(queue: &mut VecDeque<usize>, rank: &[usize]) -> Option<usize> {
    if queue.is_empty() {
        return None;
    }
    let mut best = 0;
    for (pos, &i) in queue.iter().enumerate() {
        if rank[i] < rank[queue[best]] {
            best = pos;
        }
    }
    queue.remove(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constprop::ConstEnv;
    use crate::lattice::BitSet32;
    use spo_jir::{parse_program, Program};

    /// A toy analysis: collect the set of assigned-locals' indices (as a
    /// may-union powerset), branching pruned by constants.
    struct AssignedLocals {
        env_entry: ConstEnv,
    }

    #[derive(Clone, PartialEq, Debug)]
    struct St {
        assigned: BitSet32,
        env: ConstEnv,
    }

    impl crate::lattice::JoinLattice for St {
        fn join(&mut self, other: &Self) -> bool {
            let a = self.assigned.join(&other.assigned);
            let b = self.env.join(&other.env);
            a || b
        }
    }

    impl ForwardAnalysis for AssignedLocals {
        type State = St;

        fn boundary(&mut self) -> St {
            St {
                assigned: BitSet32::empty(),
                env: self.env_entry.clone(),
            }
        }

        fn transfer(&mut self, _idx: usize, stmt: &Stmt, input: &St) -> Flow<St> {
            let mut out = input.clone();
            if let Some(d) = stmt.def_local() {
                if d.index() < 32 {
                    out.assigned.insert(d.index() as u8);
                }
            }
            out.env.transfer(stmt);
            if let Stmt::If { cond, .. } = stmt {
                return match input.env.eval_cond(cond) {
                    Some(true) => Flow::Branch {
                        taken: Some(out),
                        fall: None,
                    },
                    Some(false) => Flow::Branch {
                        taken: None,
                        fall: Some(out),
                    },
                    None => Flow::Branch {
                        taken: Some(out.clone()),
                        fall: Some(out),
                    },
                };
            }
            Flow::Uniform(out)
        }
    }

    fn analyze(src: &str) -> (Program, DataflowResults<St>) {
        let p = parse_program(src).unwrap();
        let c = p.class_by_str("T").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap().clone();
        let cfg = body.cfg();
        let n = body.locals.len();
        let mut a = AssignedLocals {
            env_entry: ConstEnv::entry(n, body.n_params),
        };
        let r = run_forward(&body, &cfg, &mut a);
        (p, r)
    }

    #[test]
    fn fixpoint_stats_count_transfers_and_visits() {
        let src = r#"
class T {
  method public static void m(bool c) {
    local int a;
  top:
    a = a + 1;
    if c goto top;
    return;
  }
}
"#;
        let p = parse_program(src).unwrap();
        let c = p.class_by_str("T").unwrap();
        let body = p.class(c).methods[0].body.as_ref().unwrap().clone();
        let cfg = body.cfg();
        let mut a = AssignedLocals {
            env_entry: ConstEnv::entry(body.locals.len(), body.n_params),
        };
        let (_, stats) = run_forward_traced(&body, &cfg, &mut a);
        assert_eq!(stats.stmts, 3);
        assert_eq!(stats.visited, 3);
        // The back edge forces at least one re-transfer of the loop head.
        assert!(stats.transfers > stats.visited);
        assert!(stats.passes() > 1.0);
        // Determinism: the same run yields the same accounting.
        let mut a2 = AssignedLocals {
            env_entry: ConstEnv::entry(body.locals.len(), body.n_params),
        };
        assert_eq!(run_forward_traced(&body, &cfg, &mut a2).1, stats);
    }

    #[test]
    fn straight_line_accumulates() {
        let (_, r) = analyze(
            r#"
class T {
  method public static void m() {
    local int a, b;
    a = 1;
    b = 2;
    return;
  }
}
"#,
        );
        // IN of the return statement has both locals assigned.
        let last = r.inputs.len() - 1;
        let st = r.input(last).unwrap();
        assert!(st.assigned.contains(0) && st.assigned.contains(1));
    }

    #[test]
    fn constant_branch_prunes_dead_edge() {
        let (_, r) = analyze(
            r#"
class T {
  method public static void m() {
    local int a;
    local bool c;
    c = true;
    if c goto yes;
    a = 1;       // dead
    return;
  yes:
    a = 2;
    return;
  }
}
"#,
        );
        // Statement 2 (`a = 1`) must be unreachable.
        let dead: Vec<usize> = r.unreachable().collect();
        assert_eq!(dead, vec![2, 3]);
    }

    #[test]
    fn unknown_branch_reaches_both() {
        let (_, r) = analyze(
            r#"
class T {
  method public static void m(bool c) {
    local int a;
    if c goto yes;
    a = 1;
    return;
  yes:
    a = 2;
    return;
  }
}
"#,
        );
        assert_eq!(r.unreachable().count(), 0);
    }

    #[test]
    fn loop_converges() {
        let (_, r) = analyze(
            r#"
class T {
  method public static void m(bool c) {
    local int a;
  top:
    a = a + 1;
    if c goto top;
    return;
  }
}
"#,
        );
        assert_eq!(r.unreachable().count(), 0);
        // The loop head sees the back edge: `a` is assigned in its IN after
        // fixpoint (join of entry {∅} and back edge {a}u gives union {a}).
        let st = r.input(0).unwrap();
        // a is local index 1 (param c is 0).
        assert!(st.assigned.contains(1));
    }

    #[test]
    fn join_point_merges_branches() {
        let (_, r) = analyze(
            r#"
class T {
  method public static void m(bool c) {
    local int a, b;
    if c goto yes;
    a = 1;
    goto join;
  yes:
    b = 2;
  join:
    return;
  }
}
"#,
        );
        let last = r.inputs.len() - 1;
        let st = r.input(last).unwrap();
        // Union of both arms: a (local 1) and b (local 2).
        assert!(st.assigned.contains(1) && st.assigned.contains(2));
    }
}
