//! End-to-end tests of the `spo` command-line interface, exercising the
//! "share policies without sharing code" workflow of §8.

use std::path::PathBuf;
use std::process::{Command, Output};

fn spo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spo"))
        .args(args)
        .output()
        .expect("spo binary runs")
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("spo-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const RUNTIME: &str = r#"
class java.lang.SecurityManager {
  method public native void checkWrite(java.lang.Object file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
"#;

const CHECKED: &str = r#"
class api.W {
  method public void write(java.lang.String p) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto go;
    virtualinvoke sm.checkWrite(p);
  go:
    staticinvoke api.W.write0(p);
    return;
  }
  method private static native void write0(java.lang.String p);
}
"#;

const UNCHECKED: &str = r#"
class api.W {
  method public void write(java.lang.String p) {
    staticinvoke api.W.write0(p);
    return;
  }
  method private static native void write0(java.lang.String p);
}
"#;

#[test]
fn help_prints_usage() {
    let out = spo(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = spo(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn check_reports_stats() {
    let rt = write_temp("rt.jir", RUNTIME);
    let a = write_temp("a.jir", CHECKED);
    let out = spo(&["check", rt.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("entry points"), "{stdout}");
    assert!(stdout.contains("% resolved"), "{stdout}");
}

#[test]
fn analyze_prints_policies() {
    let rt = write_temp("rt2.jir", RUNTIME);
    let a = write_temp("a2.jir", CHECKED);
    let out = spo(&["analyze", rt.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("api.W.write"), "{stdout}");
    assert!(stdout.contains("checkWrite"), "{stdout}");
}

#[test]
fn diff_detects_missing_check_and_sets_exit_code() {
    let rt = write_temp("rt3.jir", RUNTIME);
    let a = write_temp("a3.jir", CHECKED);
    let b = write_temp("b3.jir", UNCHECKED);
    let out = spo(&[
        "diff",
        rt.to_str().unwrap(),
        a.to_str().unwrap(),
        "--vs",
        rt.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    // Differences found => exit code 1.
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("checkWrite"), "{stdout}");
    assert!(stdout.contains("1 distinct difference"), "{stdout}");
}

#[test]
fn diff_of_identical_implementations_is_clean() {
    let rt = write_temp("rt4.jir", RUNTIME);
    let a = write_temp("a4.jir", CHECKED);
    let out = spo(&[
        "diff",
        rt.to_str().unwrap(),
        a.to_str().unwrap(),
        "--vs",
        rt.to_str().unwrap(),
        a.to_str().unwrap(),
    ]);
    assert!(out.status.success());
}

#[test]
fn export_then_diff_policies_matches_direct_diff() {
    // The §8 workflow: each vendor exports policies; anyone can difference
    // the policy files without any source code.
    let rt = write_temp("rt5.jir", RUNTIME);
    let a = write_temp("a5.jir", CHECKED);
    let b = write_temp("b5.jir", UNCHECKED);
    let export = |name: &str, file: &PathBuf| {
        let out = spo(&[
            "export",
            rt.to_str().unwrap(),
            file.to_str().unwrap(),
            "--name",
            name,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        write_temp(
            &format!("{name}.policies"),
            &String::from_utf8_lossy(&out.stdout),
        )
    };
    let pa = export("vendor-a", &a);
    let pb = export("vendor-b", &b);
    let out = spo(&["diff-policies", pa.to_str().unwrap(), pb.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("checkWrite"), "{stdout}");
}

#[test]
fn jobs_flag_does_not_change_output() {
    let rt = write_temp("rt7.jir", RUNTIME);
    let a = write_temp("a7.jir", CHECKED);
    let base = spo(&["analyze", rt.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(base.status.success());
    for jobs in [&["--jobs", "1"][..], &["--jobs", "3"], &["--jobs=2"]] {
        let mut args = vec!["analyze", rt.to_str().unwrap(), a.to_str().unwrap()];
        args.extend_from_slice(jobs);
        let out = spo(&args);
        assert!(
            out.status.success(),
            "{jobs:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(out.stdout, base.stdout, "{jobs:?} changed the output");
    }
}

#[test]
fn jobs_flag_on_diff_and_bad_values() {
    let rt = write_temp("rt8.jir", RUNTIME);
    let a = write_temp("a8.jir", CHECKED);
    let b = write_temp("b8.jir", UNCHECKED);
    let out = spo(&[
        "diff",
        "--jobs",
        "2",
        rt.to_str().unwrap(),
        a.to_str().unwrap(),
        "--vs",
        rt.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("checkWrite"));

    let out = spo(&["analyze", a.to_str().unwrap(), "--jobs", "zero"]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
    let out = spo(&["analyze", a.to_str().unwrap(), "--jobs"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = spo(&["analyze", "/nonexistent/zzz.jir"]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn check_lint_flags_dangling_references() {
    let bad = write_temp(
        "bad.jir",
        "class A { method public void m() { staticinvoke gone.Class.f(); return; } }",
    );
    let out = spo(&["check", bad.to_str().unwrap(), "--lint"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("undeclared class"), "{stdout}");

    let good = write_temp("good.jir", "class A { method public void m() { return; } }");
    let out = spo(&["check", good.to_str().unwrap(), "--lint"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 lint finding(s)"));
}

#[test]
fn throws_subcommand_reports_exception_differences() {
    let thrower = write_temp(
        "thrower.jir",
        r#"
class err.Boom { }
class api.S {
  method public void act(bool ok) {
    local err.Boom e;
    if ok goto done;
    e = new err.Boom;
    throw e;
  done:
    return;
  }
}
"#,
    );
    let silent = write_temp(
        "silent.jir",
        r#"
class api.S {
  method public void act(bool ok) {
    return;
  }
}
"#,
    );
    let out = spo(&[
        "throws",
        thrower.to_str().unwrap(),
        "--vs",
        silent.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("err.Boom"), "{stdout}");
    // Identical sides: clean.
    let out = spo(&[
        "throws",
        thrower.to_str().unwrap(),
        "--vs",
        thrower.to_str().unwrap(),
    ]);
    assert!(out.status.success());
}

#[test]
fn diff_html_emits_escaped_document() {
    let rt = write_temp("rt6.jir", RUNTIME);
    let a = write_temp("a6.jir", CHECKED);
    let b = write_temp("b6.jir", UNCHECKED);
    let out = spo(&[
        "diff",
        rt.to_str().unwrap(),
        a.to_str().unwrap(),
        "--vs",
        rt.to_str().unwrap(),
        b.to_str().unwrap(),
        "--html",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("<!DOCTYPE html>"), "{stdout}");
    assert!(stdout.contains("checkWrite"));
}

#[test]
fn stats_flag_prints_summary_without_changing_stdout() {
    let rt = write_temp("rt9.jir", RUNTIME);
    let a = write_temp("a9.jir", CHECKED);
    let base = spo(&["analyze", rt.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(base.status.success());
    let out = spo(&[
        "analyze",
        rt.to_str().unwrap(),
        a.to_str().unwrap(),
        "--stats",
    ]);
    assert!(out.status.success());
    assert_eq!(out.stdout, base.stdout, "--stats changed stdout");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("spo stats"), "{stderr}");
    assert!(stderr.contains("jir.parse.stmts"), "{stderr}");
    assert!(stderr.contains("ispa.frames"), "{stderr}");
    assert!(stderr.contains("store.may.entries"), "{stderr}");
}

#[test]
fn stats_json_is_schema_valid_and_validates_via_subcommand() {
    let rt = write_temp("rt10.jir", RUNTIME);
    let a = write_temp("a10.jir", CHECKED);
    let json_path = std::env::temp_dir().join("spo-cli-tests/analyze-stats.json");
    let out = spo(&[
        "analyze",
        rt.to_str().unwrap(),
        a.to_str().unwrap(),
        "--stats-json",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"schema\": \"spo-stats/1\""), "{json}");
    security_policy_oracle::obs::json::validate_stats(&json).expect("schema-valid snapshot");
    let out = spo(&["stats-validate", json_path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("valid spo-stats/1"));
}

#[test]
fn stats_validate_rejects_invalid_input() {
    let bad = write_temp("bad-stats.json", "{\"schema\": \"nope/9\"}");
    let out = spo(&["stats-validate", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));
}

/// Acceptance: `spo diff --stats-json` on the committed Figure 1 examples
/// emits parse/fixpoint/ISPA timings plus cache counters, and the
/// deterministic sections are byte-identical across `--jobs 1` and
/// `--jobs 8`.
#[test]
fn diff_stats_json_deterministic_sections_match_across_jobs() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let jdk = manifest.join("examples/jir/figure1_jdk.jir");
    let harmony = manifest.join("examples/jir/figure1_harmony.jir");
    let run = |jobs: &str| {
        let json_path = std::env::temp_dir().join(format!("spo-cli-tests/diff-stats-{jobs}.json"));
        let out = spo(&[
            "diff",
            jdk.to_str().unwrap(),
            "--vs",
            harmony.to_str().unwrap(),
            "--jobs",
            jobs,
            "--stats-json",
            json_path.to_str().unwrap(),
        ]);
        // Figure 1's missing checkAccept is found => exit code 1.
        assert_eq!(out.status.code(), Some(1), "jobs {jobs}");
        std::fs::read_to_string(&json_path).unwrap()
    };
    let one = run("1");
    let eight = run("8");
    for json in [&one, &eight] {
        security_policy_oracle::obs::json::validate_stats(json).expect("valid snapshot");
        for field in [
            "jir.parse",
            "fixpoint.transfers",
            "ispa.root.may",
            "ispa.root.must",
            "engine.analyze",
            "store.may.hits",
            "store.may.misses",
            "store.may.contended",
            "ispa.memo.hits",
        ] {
            assert!(json.contains(&format!("\"{field}\"")), "missing {field}");
        }
    }
    let deterministic = |src: &str| {
        let v = security_policy_oracle::obs::json::parse(src).unwrap();
        let obj = |k: &str| format!("{:?}", v.get(k));
        (obj("counters"), obj("histograms"))
    };
    assert_eq!(
        deterministic(&one),
        deterministic(&eight),
        "counters/histograms diverged between --jobs 1 and --jobs 8"
    );
}

// ---------------------------------------------------------------------------
// Degraded-mode robustness: exit code 2, restricted byte-identity, Ctrl-C.

/// A `deg.W` method with the standard checkWrite guard: small CFG, cheap
/// fixpoint, appears in `analyze` output.
fn checked_method(name: &str) -> String {
    format!(
        r#"
  method public void {name}(java.lang.String p) {{
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto go;
    virtualinvoke sm.checkWrite(p);
  go:
    staticinvoke deg.W.write0(p);
    return;
  }}"#
    )
}

/// Like [`checked_method`] but prefixed with a long chain of conditionals,
/// so its fixpoint solve takes far more worklist steps and a small
/// `--budget-steps` trips it while the small methods complete.
fn heavy_method(name: &str) -> String {
    let mut chain = String::new();
    for i in 0..12 {
        chain.push_str(&format!(
            "    if i == {i} goto a{i};\n  a{i}:\n    i = i + 1;\n"
        ));
    }
    format!(
        r#"
  method public void {name}(java.lang.String p) {{
    local java.lang.SecurityManager sm;
    local int i;
    i = 0;
{chain}    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto go;
    virtualinvoke sm.checkWrite(p);
  go:
    staticinvoke deg.W.write0(p);
    return;
  }}"#
    )
}

/// Seven entry points: three to panic-inject, two to budget-trip, two
/// survivors.
fn degraded_fixture() -> String {
    let mut src = String::from(RUNTIME);
    src.push_str("class deg.W {");
    for n in ["panicky1", "panicky2", "panicky3"] {
        src.push_str(&checked_method(n));
    }
    for n in ["heavy1", "heavy2"] {
        src.push_str(&heavy_method(n));
    }
    for n in ["ok1", "ok2"] {
        src.push_str(&checked_method(n));
    }
    src.push_str("\n  method private static native void write0(java.lang.String p);\n}\n");
    src
}

/// Splits `analyze` stdout into per-entry blocks keyed by signature.
fn entry_blocks(stdout: &str) -> std::collections::BTreeMap<String, String> {
    let mut map = std::collections::BTreeMap::new();
    let mut cur: Option<(String, String)> = None;
    for line in stdout.lines() {
        if let Some(sig) = line.strip_prefix("entry ") {
            if let Some((k, v)) = cur.take() {
                map.insert(k, v);
            }
            cur = Some((sig.to_owned(), String::new()));
        } else if line.starts_with('#') {
            if let Some((k, v)) = cur.take() {
                map.insert(k, v);
            }
        } else if let Some((_, v)) = cur.as_mut() {
            v.push_str(line);
            v.push('\n');
        }
    }
    if let Some((k, v)) = cur {
        map.insert(k, v);
    }
    map
}

/// Acceptance: with panics injected into 3 of 7 entry points and a step
/// budget tripping 2 more, `spo analyze` exits 2, reports exactly 5
/// diagnostics on stderr, and the surviving roots' report blocks are
/// byte-identical to the clean run's — deterministically across
/// `--jobs 1/2/8`.
#[test]
fn degraded_analyze_exits_2_restricted_report_deterministic() {
    let f = write_temp("degraded.jir", &degraded_fixture());
    let path = f.to_str().unwrap();
    let clean = spo(&["analyze", path]);
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let clean_blocks = entry_blocks(&String::from_utf8_lossy(&clean.stdout));
    assert_eq!(clean_blocks.len(), 7, "{clean_blocks:?}");

    let run = |jobs: &str| {
        spo(&[
            "analyze",
            path,
            "--jobs",
            jobs,
            "--inject-panic",
            "deg.W.panicky",
            "--budget-steps",
            "8",
        ])
    };
    let base = run("1");
    assert_eq!(base.status.code(), Some(2), "degraded run exits 2");
    let stderr = String::from_utf8_lossy(&base.stderr);
    let warnings: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("warning"))
        .collect();
    assert_eq!(warnings.len(), 5, "{stderr}");
    assert_eq!(stderr.matches("panic:").count(), 3, "{stderr}");
    assert_eq!(stderr.matches("budget-steps:").count(), 2, "{stderr}");

    let degraded_blocks = entry_blocks(&String::from_utf8_lossy(&base.stdout));
    let surviving: Vec<&String> = degraded_blocks.keys().collect();
    assert_eq!(degraded_blocks.len(), 2, "{surviving:?}");
    for (sig, block) in &degraded_blocks {
        assert_eq!(
            Some(block),
            clean_blocks.get(sig),
            "surviving root {sig} diverged from the clean run"
        );
    }
    for jobs in ["2", "8"] {
        let out = run(jobs);
        assert_eq!(out.status.code(), Some(2), "jobs {jobs}");
        assert_eq!(out.stdout, base.stdout, "jobs {jobs} changed the report");
    }
}

/// A degraded run's `--stats-json` snapshot carries the diagnostics
/// section and still passes `spo stats-validate`.
#[test]
fn degraded_stats_json_validates() {
    let f = write_temp("degraded-stats.jir", &degraded_fixture());
    let json_path = std::env::temp_dir().join("spo-cli-tests/degraded-stats.json");
    let out = spo(&[
        "analyze",
        f.to_str().unwrap(),
        "--inject-panic",
        "deg.W.panicky",
        "--stats-json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"diagnostics\""), "{json}");
    assert!(json.contains("guard.roots_degraded"), "{json}");
    assert!(json.contains("\"cause\": \"panic\""), "{json}");
    let out = spo(&["stats-validate", json_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A file with one malformed method still analyzes: the member is dropped
/// with a parse diagnostic, everything else is reported, exit code 2.
#[test]
fn parse_recovery_degrades_instead_of_failing() {
    let src = format!(
        "{RUNTIME}\nclass deg.W {{{}\n  method public void broken(java.lang.String p) {{\n    p = = nonsense;\n  }}{}\n  method private static native void write0(java.lang.String p);\n}}\n",
        checked_method("ok1"),
        checked_method("ok2"),
    );
    let f = write_temp("recovered.jir", &src);
    let out = spo(&["analyze", f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning [parse]"), "{stderr}");
    assert!(stderr.contains("dropped method"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("deg.W.ok1"), "{stdout}");
    assert!(stdout.contains("deg.W.ok2"), "{stdout}");
}

/// Ctrl-C mid-run: the workers drain, the partial report and a
/// schema-valid stats snapshot are still written, exit code 2.
#[cfg(unix)]
#[test]
fn sigint_yields_partial_report_and_valid_stats() {
    use std::process::Stdio;
    let f = write_temp("sigint.jir", &degraded_fixture());
    let json_path = std::env::temp_dir().join("spo-cli-tests/sigint-stats.json");
    let child = Command::new(env!("CARGO_BIN_EXE_spo"))
        .args([
            "analyze",
            f.to_str().unwrap(),
            "--jobs",
            "1",
            "--inject-sleep-ms",
            "300",
            "--stats-json",
            json_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(450));
    let _ = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2), "SIGINT completes degraded");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cancel"), "{stderr}");
    // The report and summary still reached stdout.
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("entry points"),
        "partial report missing"
    );
    let json = std::fs::read_to_string(&json_path).unwrap();
    security_policy_oracle::obs::json::validate_stats(&json).expect("schema-valid snapshot");
    assert!(json.contains("\"cause\": \"cancel\""), "{json}");
}

/// A service manager's `kill` (SIGTERM) behaves exactly like Ctrl-C: the
/// workers drain, the partial report is written, exit code 2.
#[cfg(unix)]
#[test]
fn sigterm_drains_like_sigint() {
    use std::process::Stdio;
    let f = write_temp("sigterm.jir", &degraded_fixture());
    let child = Command::new(env!("CARGO_BIN_EXE_spo"))
        .args([
            "analyze",
            f.to_str().unwrap(),
            "--jobs",
            "1",
            "--inject-sleep-ms",
            "300",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(450));
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2), "SIGTERM completes degraded");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cancel"), "{stderr}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("entry points"),
        "partial report missing"
    );
}

/// A zero budget is the guard-internal "unlimited" sentinel; passing it
/// on the command line used to be accepted and silently disabled the
/// requested limit. `--timeout-ms` (the `--deadline` alias matching the
/// serve protocol's `timeout_ms` field) gets the same rejection.
#[test]
fn zero_budgets_are_rejected() {
    let f = write_temp("zero-budget.jir", CHECKED);
    for flag in ["--budget-steps", "--budget-frames", "--timeout-ms"] {
        let out = spo(&["analyze", f.to_str().unwrap(), flag, "0"]);
        assert_eq!(out.status.code(), Some(3), "{flag}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(flag), "{stderr}");
        assert!(stderr.contains("omit the flag for unlimited"), "{stderr}");
    }
}

/// `--timeout-ms` works as a deadline on `analyze`/`diff`: a tiny timeout
/// over a slow (sleep-injected) run degrades with a deadline diagnostic.
#[test]
fn timeout_ms_aliases_the_deadline_budget() {
    let f = write_temp("timeout-alias.jir", &degraded_fixture());
    let out = spo(&[
        "analyze",
        f.to_str().unwrap(),
        "--jobs",
        "1",
        "--inject-sleep-ms",
        "100",
        "--timeout-ms",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline"), "{stderr}");
}

/// `check` and `throws` used to swallow unrecognized flags silently; now
/// they fail fast naming the flag, and `check` points guard flags at the
/// commands that actually run an analysis.
#[test]
fn unknown_flags_are_rejected_not_swallowed() {
    let f = write_temp("unknown-flag.jir", CHECKED);
    let path = f.to_str().unwrap();

    let out = spo(&["check", path, "--frobnicate"]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--frobnicate"), "{stderr}");

    let out = spo(&["check", path, "--budget-steps", "5"]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--budget-steps"), "{stderr}");
    assert!(stderr.contains("no policy analysis"), "{stderr}");

    let out = spo(&["throws", path, "--wat", "--vs", path]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--wat"));

    // `--lint` is still accepted (exit 1 here is lint findings, not the
    // fatal flag-rejection exit).
    let out = spo(&["check", path, "--lint"]);
    assert_ne!(out.status.code(), Some(3), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("lint finding"));
}

/// `spo analyze ... | head -1`: when the reader hangs up after one line,
/// the analysis must exit with its verdict, not die on SIGPIPE or panic
/// on the failed stdout write. The child writes a report much larger than
/// the pipe buffer consumes, so the broken pipe genuinely fires.
#[test]
#[cfg(unix)]
fn broken_stdout_pipe_exits_quietly() {
    use std::io::Read;
    // A program wide enough that its report overflows a pipe the reader
    // abandoned: many classes, each an entry point with a policy.
    let mut src = String::from(RUNTIME);
    for i in 0..400 {
        src.push_str(&format!(
            r#"
class pipe.C{i} {{
  method public void write(java.lang.String p) {{
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite(p);
    staticinvoke pipe.C{i}.op();
    return;
  }}
  method private static native void op();
}}
"#
        ));
    }
    let big = write_temp("broken_pipe_big.jir", &src);
    let mut child = Command::new(env!("CARGO_BIN_EXE_spo"))
        .arg("analyze")
        .arg(&big)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn");
    // Read one byte, then hang up — everything the child writes after the
    // pipe buffer drains raises EPIPE/BrokenPipe at its end.
    let mut stdout = child.stdout.take().expect("stdout piped");
    let mut one = [0u8; 1];
    stdout.read_exact(&mut one).expect("first byte");
    drop(stdout);
    let status = child.wait().expect("child exits");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert_eq!(
        status.code(),
        Some(0),
        "broken pipe is a quiet success, got {status:?}: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "no panic on the broken pipe: {stderr}"
    );
}
