//! Property tests over the whole pipeline, on randomly seeded corpora.
//!
//! Each property runs over a fixed spread of corpus seeds so the suite is
//! deterministic while still exercising structurally different corpora.

use security_policy_oracle::compare_implementations;
use spo_core::{
    diff_libraries, export_policies, group_differences, import_policies, render_reports, root_keys,
    AnalysisOptions, Analyzer, MemoScope,
};
use spo_corpus::{generate, CorpusConfig, Lib};
use spo_engine::AnalysisEngine;

/// Corpus seeds used by every property: spread across the [0, 1000) range
/// the original fuzzing drew from.
const SEEDS: [u64; 6] = [0, 131, 262, 417, 598, 923];

fn small_corpus(seed: u64) -> spo_corpus::Corpus {
    generate(&CorpusConfig { seed, scale: 0.004 })
}

/// `must ⊆ may` for every event policy of every entry point — the
/// fundamental relation between the two passes.
#[test]
fn must_is_subset_of_may() {
    for seed in SEEDS {
        let corpus = small_corpus(seed);
        for lib in Lib::ALL {
            let analyzer = Analyzer::new(corpus.program(lib), AnalysisOptions::default());
            let policies = analyzer.analyze_library(lib.name());
            for (sig, entry) in &policies.entries {
                for (event, p) in &entry.events {
                    assert!(
                        p.must.is_subset(p.may),
                        "{lib} {sig} {event}: must {} ⊄ may {}",
                        p.must,
                        p.may
                    );
                    // The flat may set is exactly the union of the
                    // disjunctive paths.
                    assert_eq!(p.may.bits(), p.may_paths.flat_union());
                }
            }
        }
    }
}

/// Memoization must not change analysis results, only speed — the
/// soundness requirement behind Table 2.
#[test]
fn memo_scopes_agree_on_random_corpora() {
    for seed in SEEDS {
        let corpus = small_corpus(seed);
        let program = corpus.program(Lib::Harmony);
        let base = Analyzer::new(
            program,
            AnalysisOptions {
                memo: MemoScope::None,
                ..Default::default()
            },
        )
        .analyze_library("h");
        for memo in [MemoScope::PerEntry, MemoScope::Global] {
            let lib = Analyzer::new(
                program,
                AnalysisOptions {
                    memo,
                    ..Default::default()
                },
            )
            .analyze_library("h");
            for (sig, entry) in &base.entries {
                assert_eq!(
                    &lib.entries[sig].events, &entry.events,
                    "memo {memo:?} diverges at {sig} (seed {seed})"
                );
            }
        }
    }
}

/// The parallel engine is byte-identical to the serial analyzer for any
/// worker count: same policies, same diff, same rendered report — the
/// engine's determinism contract, checked over random corpora.
#[test]
fn engine_matches_serial_for_any_worker_count() {
    let options = AnalysisOptions {
        memo: MemoScope::Global,
        ..Default::default()
    };
    for seed in SEEDS {
        let corpus = small_corpus(seed);
        let serial: Vec<_> = [Lib::Jdk, Lib::Harmony]
            .iter()
            .map(|&lib| Analyzer::new(corpus.program(lib), options).analyze_library(lib.name()))
            .collect();
        let serial_diff = diff_libraries(&serial[0], &serial[1]);
        let serial_groups = group_differences(&serial_diff, &root_keys(&serial_diff));
        let serial_report = render_reports(&serial_diff, &serial_groups);
        for jobs in [1, 2, 8] {
            let engine = AnalysisEngine::new(jobs);
            let par: Vec<_> = [Lib::Jdk, Lib::Harmony]
                .iter()
                .map(|&lib| {
                    engine
                        .analyze_library(corpus.program(lib), lib.name(), options)
                        .0
                })
                .collect();
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(
                    s.entries, p.entries,
                    "policies diverge (seed {seed}, jobs {jobs})"
                );
            }
            let par_diff = diff_libraries(&par[0], &par[1]);
            let par_groups = group_differences(&par_diff, &root_keys(&par_diff));
            assert_eq!(
                serial_report,
                render_reports(&par_diff, &par_groups),
                "rendered report diverges (seed {seed}, jobs {jobs})"
            );
        }
    }
}

/// Comparing an implementation against itself reports nothing: the
/// no-intrinsic-false-positives property on arbitrary corpora.
#[test]
fn self_comparison_is_empty() {
    for seed in SEEDS {
        let corpus = small_corpus(seed);
        let program = corpus.program(Lib::Classpath);
        let report =
            compare_implementations(program, "x", program, "y", AnalysisOptions::default());
        assert!(report.groups.is_empty(), "seed {seed}");
    }
}

/// Differencing is symmetric in what it finds: swapping the sides
/// yields the same number of differences per entry point with mirrored
/// deltas.
#[test]
fn differencing_is_symmetric() {
    for seed in SEEDS {
        let corpus = small_corpus(seed);
        let jdk = Analyzer::new(corpus.program(Lib::Jdk), AnalysisOptions::default())
            .analyze_library("jdk");
        let harmony = Analyzer::new(corpus.program(Lib::Harmony), AnalysisOptions::default())
            .analyze_library("harmony");
        let ab = diff_libraries(&jdk, &harmony);
        let ba = diff_libraries(&harmony, &jdk);
        assert_eq!(ab.matching_apis, ba.matching_apis);
        assert_eq!(ab.differences.len(), ba.differences.len());
        let mut deltas_ab: Vec<String> = ab
            .differences
            .iter()
            .map(|d| format!("{}:{}", d.signature, d.delta))
            .collect();
        let mut deltas_ba: Vec<String> = ba
            .differences
            .iter()
            .map(|d| format!("{}:{}", d.signature, d.delta))
            .collect();
        deltas_ab.sort();
        deltas_ba.sort();
        assert_eq!(deltas_ab, deltas_ba);
    }
}

/// The exchange format is lossless for analysis results: export →
/// import → diff behaves identically to diffing the originals.
#[test]
fn exchange_roundtrip_preserves_diffs() {
    for seed in SEEDS {
        let corpus = small_corpus(seed);
        let jdk = Analyzer::new(corpus.program(Lib::Jdk), AnalysisOptions::default())
            .analyze_library("jdk");
        let classpath = Analyzer::new(corpus.program(Lib::Classpath), AnalysisOptions::default())
            .analyze_library("classpath");
        let imported = import_policies(&export_policies(&classpath)).unwrap();
        assert_eq!(&imported.entries, &classpath.entries);
        let direct = diff_libraries(&jdk, &classpath);
        let via = diff_libraries(&jdk, &imported);
        assert_eq!(direct.differences, via.differences);
    }
}

/// The generated corpus sources keep the printer/parser honest at
/// scale: parse(print(parse(src))) equals parse(src) structurally.
#[test]
fn corpus_print_parse_fixpoint() {
    for seed in SEEDS {
        let corpus = small_corpus(seed);
        let program = corpus.program(Lib::Jdk);
        let printed = spo_jir::print_program(program);
        let reparsed = spo_jir::parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed (seed {seed}): {e}"));
        assert_eq!(program.class_count(), reparsed.class_count());
        let reprinted = spo_jir::print_program(&reparsed);
        assert_eq!(printed, reprinted);
    }
}
