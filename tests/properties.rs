//! Property tests over the whole pipeline, on randomly seeded corpora.

use proptest::prelude::*;
use security_policy_oracle::compare_implementations;
use spo_core::{
    diff_libraries, export_policies, import_policies, AnalysisOptions, Analyzer, MemoScope,
};
use spo_corpus::{generate, CorpusConfig, Lib};

fn small_corpus(seed: u64) -> spo_corpus::Corpus {
    generate(&CorpusConfig { seed, scale: 0.004 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `must ⊆ may` for every event policy of every entry point — the
    /// fundamental relation between the two passes.
    #[test]
    fn must_is_subset_of_may(seed in 0u64..1_000) {
        let corpus = small_corpus(seed);
        for lib in Lib::ALL {
            let analyzer = Analyzer::new(corpus.program(lib), AnalysisOptions::default());
            let policies = analyzer.analyze_library(lib.name());
            for (sig, entry) in &policies.entries {
                for (event, p) in &entry.events {
                    prop_assert!(
                        p.must.is_subset(p.may),
                        "{lib} {sig} {event}: must {} ⊄ may {}",
                        p.must,
                        p.may
                    );
                    // The flat may set is exactly the union of the
                    // disjunctive paths.
                    prop_assert_eq!(p.may.bits(), p.may_paths.flat_union());
                }
            }
        }
    }

    /// Memoization must not change analysis results, only speed — the
    /// soundness requirement behind Table 2.
    #[test]
    fn memo_scopes_agree_on_random_corpora(seed in 0u64..1_000) {
        let corpus = small_corpus(seed);
        let program = corpus.program(Lib::Harmony);
        let base = Analyzer::new(program, AnalysisOptions { memo: MemoScope::None, ..Default::default() })
            .analyze_library("h");
        for memo in [MemoScope::PerEntry, MemoScope::Global] {
            let lib = Analyzer::new(program, AnalysisOptions { memo, ..Default::default() })
                .analyze_library("h");
            for (sig, entry) in &base.entries {
                prop_assert_eq!(
                    &lib.entries[sig].events,
                    &entry.events,
                    "memo {:?} diverges at {}",
                    memo,
                    sig
                );
            }
        }
    }

    /// Comparing an implementation against itself reports nothing: the
    /// no-intrinsic-false-positives property on arbitrary corpora.
    #[test]
    fn self_comparison_is_empty(seed in 0u64..1_000) {
        let corpus = small_corpus(seed);
        let program = corpus.program(Lib::Classpath);
        let report = compare_implementations(
            program, "x", program, "y", AnalysisOptions::default());
        prop_assert!(report.groups.is_empty());
    }

    /// Differencing is symmetric in what it finds: swapping the sides
    /// yields the same number of differences per entry point with mirrored
    /// deltas.
    #[test]
    fn differencing_is_symmetric(seed in 0u64..1_000) {
        let corpus = small_corpus(seed);
        let jdk = Analyzer::new(corpus.program(Lib::Jdk), AnalysisOptions::default())
            .analyze_library("jdk");
        let harmony = Analyzer::new(corpus.program(Lib::Harmony), AnalysisOptions::default())
            .analyze_library("harmony");
        let ab = diff_libraries(&jdk, &harmony);
        let ba = diff_libraries(&harmony, &jdk);
        prop_assert_eq!(ab.matching_apis, ba.matching_apis);
        prop_assert_eq!(ab.differences.len(), ba.differences.len());
        let mut deltas_ab: Vec<String> =
            ab.differences.iter().map(|d| format!("{}:{}", d.signature, d.delta)).collect();
        let mut deltas_ba: Vec<String> =
            ba.differences.iter().map(|d| format!("{}:{}", d.signature, d.delta)).collect();
        deltas_ab.sort();
        deltas_ba.sort();
        prop_assert_eq!(deltas_ab, deltas_ba);
    }

    /// The exchange format is lossless for analysis results: export →
    /// import → diff behaves identically to diffing the originals.
    #[test]
    fn exchange_roundtrip_preserves_diffs(seed in 0u64..1_000) {
        let corpus = small_corpus(seed);
        let jdk = Analyzer::new(corpus.program(Lib::Jdk), AnalysisOptions::default())
            .analyze_library("jdk");
        let classpath = Analyzer::new(corpus.program(Lib::Classpath), AnalysisOptions::default())
            .analyze_library("classpath");
        let imported = import_policies(&export_policies(&classpath)).unwrap();
        prop_assert_eq!(&imported.entries, &classpath.entries);
        let direct = diff_libraries(&jdk, &classpath);
        let via = diff_libraries(&jdk, &imported);
        prop_assert_eq!(direct.differences, via.differences);
    }

    /// The generated corpus sources keep the printer/parser honest at
    /// scale: parse(print(parse(src))) equals parse(src) structurally.
    #[test]
    fn corpus_print_parse_fixpoint(seed in 0u64..1_000) {
        let corpus = small_corpus(seed);
        let program = corpus.program(Lib::Jdk);
        let printed = spo_jir::print_program(program);
        let reparsed = spo_jir::parse_program(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}")))?;
        prop_assert_eq!(program.class_count(), reparsed.class_count());
        let reprinted = spo_jir::print_program(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }
}
