//! End-to-end tests of the compiled policy index (`spo cache
//! export-index` / `spo index`, DESIGN.md §16). The standing contract:
//! query and diff output is byte-identical to the full-analysis path for
//! every entry point, and every corruption mode degrades to a typed
//! fatal error (exit 3, empty stdout) — never a wrong answer.

use spo_core::{render_analysis, render_entry, AnalysisOptions};
use spo_engine::AnalysisEngine;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/jir")
        .join(name)
}

fn spo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spo"))
        .args(args)
        .output()
        .expect("spo binary runs")
}

/// Scratch directory removed on drop, so a failing test never leaks it.
struct Workdir(PathBuf);

impl Workdir {
    fn new(tag: &str) -> Workdir {
        let dir = std::env::temp_dir().join(format!("spo-index-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("workdir");
        Workdir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Workdir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `spo cache export-index` over one fixture, returning the `.spi` path.
fn export(dir: &Workdir, name: &str, jir: &Path) -> PathBuf {
    let out = dir.path(&format!("{name}.spi"));
    let run = spo(&[
        "cache",
        "export-index",
        jir.to_str().unwrap(),
        "--name",
        name,
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(
        run.status.code(),
        Some(0),
        "export-index succeeds: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    out
}

/// The full listing (`spo index query` with no signature) and every
/// single-entry query must reproduce the analysis path byte-for-byte.
#[test]
fn cli_query_is_byte_identical_to_analyze() {
    let jdk = fixture("figure1_jdk.jir");
    let dir = Workdir::new("cli-query");
    let spi = export(&dir, "lib", &jdk);

    let analyze = spo(&["analyze", jdk.to_str().unwrap()]);
    assert!(analyze.status.success());
    let listing = spo(&["index", "query", "--index", spi.to_str().unwrap()]);
    assert_eq!(listing.status.code(), Some(0));
    assert_eq!(
        listing.stdout, analyze.stdout,
        "full listing matches `spo analyze` bytes"
    );

    // Per-entry: each `entry <sig>` section of the listing (up to the
    // next section or the `#` footer), queried individually, returns
    // exactly that section.
    let text = String::from_utf8(analyze.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut queried = 0;
    for (i, line) in lines.iter().enumerate() {
        let Some(sig) = line.strip_prefix("entry ") else {
            continue;
        };
        let mut want = String::new();
        for l in &lines[i..] {
            if !want.is_empty() && (l.starts_with("entry ") || l.starts_with('#')) {
                break;
            }
            want.push_str(l);
            want.push('\n');
        }
        let one = spo(&["index", "query", sig, "--index", spi.to_str().unwrap()]);
        assert_eq!(one.status.code(), Some(0), "query {sig}");
        assert_eq!(
            String::from_utf8(one.stdout).unwrap(),
            want,
            "single query for {sig} matches its listing section"
        );
        queried += 1;
    }
    assert!(queried > 0, "fixture has entries with checks");
}

/// `spo index diff` over two compiled indexes prints the same report and
/// exit code as `spo diff` over the source programs.
#[test]
fn cli_diff_is_byte_identical_to_full_diff() {
    let jdk = fixture("figure1_jdk.jir");
    let harmony = fixture("figure1_harmony.jir");
    let dir = Workdir::new("cli-diff");
    // `spo diff` names its sides "left" and "right"; exporting under the
    // same names keeps the rendered report identical.
    let left = export(&dir, "left", &jdk);
    let right = export(&dir, "right", &harmony);

    let full = spo(&[
        "diff",
        jdk.to_str().unwrap(),
        "--vs",
        harmony.to_str().unwrap(),
    ]);
    assert_eq!(full.status.code(), Some(1), "figure 1 has findings");
    let indexed = spo(&[
        "index",
        "diff",
        left.to_str().unwrap(),
        right.to_str().unwrap(),
    ]);
    assert_eq!(indexed.status.code(), Some(1), "findings keep exit code 1");
    assert_eq!(
        indexed.stdout, full.stdout,
        "index diff matches `spo diff` bytes"
    );
}

/// Querying a signature the index does not hold is a typed fatal error
/// (exit 3), same contract as the daemon's not-found path.
#[test]
fn cli_query_unknown_entry_is_fatal() {
    let dir = Workdir::new("cli-missing");
    let spi = export(&dir, "lib", &fixture("figure1_jdk.jir"));
    let out = spo(&[
        "index",
        "query",
        "no.such.Class.method()",
        "--index",
        spi.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3));
    assert!(out.stdout.is_empty(), "no partial report");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("no entry point \"no.such.Class.method()\" in \"lib\""),
        "typed diagnostic names the signature and library: {err}"
    );
}

/// Diffing two indexes compiled under different analysis options is
/// refused — mixed options would make every reported difference suspect.
#[test]
fn cli_diff_rejects_mismatched_options() {
    let jdk = fixture("figure1_jdk.jir");
    let dir = Workdir::new("cli-mismatch");
    let narrow = export(&dir, "lib", &jdk);
    let broad = dir.path("broad.spi");
    let run = spo(&[
        "cache",
        "export-index",
        jdk.to_str().unwrap(),
        "--name",
        "lib",
        "--out",
        broad.to_str().unwrap(),
        "--broad",
    ]);
    assert_eq!(run.status.code(), Some(0));
    let out = spo(&[
        "index",
        "diff",
        narrow.to_str().unwrap(),
        broad.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("options mismatch"),
        "diagnostic names the mismatch"
    );
}

/// Four ways of damaging the `.spi` file — a flipped payload byte, a
/// mid-file truncation, a truncated trailing checksum, and a format
/// version bump — must each surface as the typed unusable-index error
/// with exit 3 and an empty stdout. Degraded, never wrong.
#[test]
fn corrupted_index_degrades_not_wrong() {
    let dir = Workdir::new("corrupt");
    let spi = export(&dir, "lib", &fixture("figure1_jdk.jir"));
    let clean = std::fs::read(&spi).expect("read index");
    let cases: [(&str, Vec<u8>); 4] = [
        ("flipped payload byte", {
            let mut b = clean.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x40;
            b
        }),
        ("mid-file truncation", clean[..clean.len() / 2].to_vec()),
        (
            "truncated trailing checksum",
            clean[..clean.len() - 3].to_vec(),
        ),
        ("format version bump", {
            let mut b = clean.clone();
            // Header is `spo-index 1\n`; bump the version digit.
            b[10] = b'9';
            b
        }),
    ];
    for (what, bytes) in cases {
        let bad = dir.path("bad.spi");
        std::fs::write(&bad, &bytes).expect("write damaged index");
        let out = spo(&["index", "query", "--index", bad.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(3), "{what}: fatal exit");
        assert!(out.stdout.is_empty(), "{what}: no partial report");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("the index is unusable"),
            "{what}: typed diagnostic suggests the fallback"
        );
    }
}

/// `export-index` refuses to bake a degraded analysis into a durable
/// file: a budget-tripped root would silently read as "no checks"
/// forever after.
#[test]
fn export_refuses_degraded_analysis() {
    let dir = Workdir::new("degraded");
    let out = dir.path("lib.spi");
    let run = spo(&[
        "cache",
        "export-index",
        fixture("figure1_jdk.jir").to_str().unwrap(),
        "--name",
        "lib",
        "--out",
        out.to_str().unwrap(),
        "--budget-steps",
        "1",
    ]);
    assert_eq!(run.status.code(), Some(3), "degraded export is fatal");
    assert!(!out.exists(), "no index file is left behind");
    assert!(
        String::from_utf8_lossy(&run.stderr).contains("degraded"),
        "diagnostic says why"
    );
}

/// In-process round trip at corpus scale 1: every entry point queried
/// from the parsed index renders byte-identically to the analysis-path
/// `render_entry`, and the full listing matches `render_analysis`.
#[test]
fn roundtrip_matches_analysis_rendering_at_scale_one() {
    let corpus = spo_corpus::generate(&spo_corpus::CorpusConfig::default());
    let program = corpus.program(spo_corpus::Lib::Jdk);
    let options = AnalysisOptions::default();
    let engine = AnalysisEngine::new(0);
    let (full, _) = engine.analyze_library(program, "jdk", options);
    let intra_options = AnalysisOptions {
        interprocedural: false,
        ..options
    };
    let (intra, _) = engine.analyze_library(program, "jdk", intra_options);
    let bytes = spo_index::IndexBuilder::new("jdk", &options, &full, &intra)
        .build()
        .expect("index builds");
    let index = spo_index::PolicyIndex::parse(&bytes).expect("index parses");
    assert_eq!(index.len(), full.entries.len(), "every entry point stored");
    for (sig, entry) in &full.entries {
        let got = index
            .query(sig)
            .expect("query decodes")
            .expect("entry point found");
        assert_eq!(got, render_entry(sig, entry), "round trip for {sig}");
    }
    assert_eq!(
        index.render_full().expect("listing decodes"),
        render_analysis(&full),
        "full listing matches render_analysis"
    );
}

/// Strided sample at paper scale 10 — ignored by default (takes tens of
/// seconds); CI and `--ignored` runs keep the large-scale contract.
#[test]
#[ignore = "paper-scale corpus; run explicitly with --ignored"]
fn roundtrip_strided_sample_at_scale_ten() {
    let corpus = spo_corpus::generate(&spo_corpus::CorpusConfig {
        scale: 10.0,
        ..Default::default()
    });
    let program = corpus.program(spo_corpus::Lib::Jdk);
    let options = AnalysisOptions::default();
    let engine = AnalysisEngine::new(0);
    let (full, _) = engine.analyze_library(program, "jdk", options);
    let (intra, _) = engine.analyze_library(
        program,
        "jdk",
        AnalysisOptions {
            interprocedural: false,
            ..options
        },
    );
    let bytes = spo_index::IndexBuilder::new("jdk", &options, &full, &intra)
        .build()
        .expect("index builds");
    let index = spo_index::PolicyIndex::parse(&bytes).expect("index parses");
    assert_eq!(index.len(), full.entries.len());
    // Prime-strided sample: cheap, yet covers the whole key range.
    for (sig, entry) in full.entries.iter().step_by(97) {
        let got = index
            .query(sig)
            .expect("query decodes")
            .expect("entry point found");
        assert_eq!(got, render_entry(sig, entry), "round trip for {sig}");
    }
}
