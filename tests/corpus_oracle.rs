//! Full-pipeline integration test: generate the three-implementation
//! corpus, run the oracle over every pairing, classify the grouped reports
//! against the ground-truth catalog, and check the Table 3 counts.

use security_policy_oracle::{compare_implementations, PairingReport};
use spo_core::{AnalysisOptions, ReportGroup};
use spo_corpus::{generate, BugCategory, Corpus, CorpusConfig, Lib};
use std::collections::{BTreeMap, BTreeSet};

/// `(distinct, manifestations)` per ground-truth category and buggy lib.
type CategoryCounts = BTreeMap<(BugCategory, Lib), (usize, usize)>;

fn corpus() -> Corpus {
    generate(&CorpusConfig::test_sized())
}

fn run_pairing(corpus: &Corpus, a: Lib, b: Lib, options: AnalysisOptions) -> PairingReport {
    compare_implementations(
        corpus.program(a),
        a.name(),
        corpus.program(b),
        b.name(),
        options,
    )
}

/// Tallies grouped reports by ground-truth category.
fn tally(corpus: &Corpus, groups: &[ReportGroup]) -> (CategoryCounts, Vec<String>) {
    let mut counts: CategoryCounts = BTreeMap::new();
    let mut unmatched = Vec::new();
    for g in groups {
        match corpus.catalog.classify(g) {
            Some(bug) => {
                let slot = counts.entry((bug.category, bug.buggy_lib)).or_default();
                slot.0 += 1;
                slot.1 += g.manifestation_count();
            }
            None => unmatched.push(format!(
                "UNMATCHED {} ({} manifests): {:?}",
                g.root_key,
                g.manifestation_count(),
                g.manifestations.iter().take(3).collect::<Vec<_>>()
            )),
        }
    }
    (counts, unmatched)
}

fn check_pairing(corpus: &Corpus, a: Lib, b: Lib) {
    let report = run_pairing(corpus, a, b, AnalysisOptions::default());
    let (counts, unmatched) = tally(corpus, &report.groups);
    assert!(
        unmatched.is_empty(),
        "{a} vs {b}: every reported difference must be an injected bug \
         (no intrinsic false positives):\n{}",
        unmatched.join("\n")
    );
    let expected = corpus.catalog.expected(a, b);
    for (lib, want) in &expected.vulns {
        let got = counts
            .get(&(BugCategory::Vulnerability, *lib))
            .copied()
            .unwrap_or_default();
        assert_eq!(
            got, *want,
            "{a} vs {b}: vulnerabilities in {lib} (distinct, manifestations)"
        );
    }
    let interop: (usize, usize) = Lib::ALL
        .iter()
        .filter_map(|l| counts.get(&(BugCategory::Interop, *l)))
        .fold((0, 0), |acc, c| (acc.0 + c.0, acc.1 + c.1));
    assert_eq!(interop, expected.interop, "{a} vs {b}: interop bugs");
    let fps: (usize, usize) = Lib::ALL
        .iter()
        .filter_map(|l| counts.get(&(BugCategory::FalsePositive, *l)))
        .fold((0, 0), |acc, c| (acc.0 + c.0, acc.1 + c.1));
    assert_eq!(fps, expected.false_positives, "{a} vs {b}: false positives");
    // With ICP on, no ICP-only bug may be reported.
    for l in Lib::ALL {
        assert!(
            !counts.contains_key(&(BugCategory::IcpOnly, l)),
            "{a} vs {b}: ICP-only difference reported despite ICP"
        );
    }
}

#[test]
fn classpath_vs_harmony_matches_table_3() {
    let c = corpus();
    check_pairing(&c, Lib::Classpath, Lib::Harmony);
}

#[test]
fn jdk_vs_harmony_matches_table_3() {
    let c = corpus();
    check_pairing(&c, Lib::Jdk, Lib::Harmony);
}

#[test]
fn jdk_vs_classpath_matches_table_3() {
    let c = corpus();
    check_pairing(&c, Lib::Jdk, Lib::Classpath);
}

#[test]
fn icp_ablation_eliminates_exactly_the_planned_false_positives() {
    let c = corpus();
    for (a, b) in [
        (Lib::Classpath, Lib::Harmony),
        (Lib::Jdk, Lib::Harmony),
        (Lib::Jdk, Lib::Classpath),
    ] {
        let with_icp = run_pairing(&c, a, b, AnalysisOptions::default());
        let without = run_pairing(
            &c,
            a,
            b,
            AnalysisOptions {
                icp: false,
                ..Default::default()
            },
        );
        let on_keys: BTreeSet<&str> = with_icp
            .groups
            .iter()
            .map(|g| g.root_key.as_str())
            .collect();
        let eliminated: Vec<&ReportGroup> = without
            .groups
            .iter()
            .filter(|g| !on_keys.contains(g.root_key.as_str()))
            .collect();
        let expected = c.catalog.expected(a, b).icp_eliminated;
        let distinct = eliminated.len();
        let manifests: usize = eliminated.iter().map(|g| g.manifestation_count()).sum();
        assert_eq!(
            (distinct, manifests),
            expected,
            "{a} vs {b}: ICP-eliminated differences"
        );
        // Every eliminated difference is a planned IcpOnly bug.
        for g in eliminated {
            let bug = c
                .catalog
                .classify(g)
                .unwrap_or_else(|| panic!("{a} vs {b}: unplanned ICP-off diff {}", g.root_key));
            assert_eq!(bug.category, BugCategory::IcpOnly, "{}", bug.id);
        }
    }
}

#[test]
fn matching_api_counts_scale_with_groups() {
    let c = corpus();
    let jh = run_pairing(&c, Lib::Jdk, Lib::Harmony, AnalysisOptions::default());
    let jc = run_pairing(&c, Lib::Jdk, Lib::Classpath, AnalysisOptions::default());
    let ch = run_pairing(&c, Lib::Classpath, Lib::Harmony, AnalysisOptions::default());
    // The prelude and All-group entries are shared by every pairing, so
    // matching counts are substantial; JC shares an extra background group
    // plus the large JC-only bug wrappers.
    assert!(jc.diff.matching_apis > ch.diff.matching_apis);
    assert!(jh.diff.matching_apis > 0);
}

#[test]
fn total_vulnerabilities_match_paper_totals() {
    let c = corpus();
    assert_eq!(c.catalog.total_vulnerabilities(Lib::Jdk), 6);
    assert_eq!(c.catalog.total_vulnerabilities(Lib::Harmony), 6);
    assert_eq!(c.catalog.total_vulnerabilities(Lib::Classpath), 8);
}

#[test]
fn broad_events_find_no_new_bugs_on_the_corpus() {
    // §3: the broad definition did not find additional bugs on the JCL.
    // On the synthetic corpus it may add *manifestations* of already-known
    // root causes but must not surface unplanned differences.
    let c = corpus();
    let broad = run_pairing(
        &c,
        Lib::Jdk,
        Lib::Harmony,
        AnalysisOptions {
            events: spo_core::EventDef::Broad,
            ..Default::default()
        },
    );
    let (_, unmatched) = tally(&c, &broad.groups);
    assert!(
        unmatched.is_empty(),
        "broad events surfaced unplanned differences:\n{}",
        unmatched.join("\n")
    );
}
