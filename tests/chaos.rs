//! End-to-end tests of `spo chaos`: the deterministic fault-injection
//! soak must be replayable — one seed, one fault schedule — and a full
//! run over all four fault domains (cache IO, engine workers, daemon
//! sessions, compiled-index reads) must hold the standing invariants.

#![cfg(unix)]

use std::process::{Command, Output};

fn spo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spo"))
        .args(args)
        // The soak arms its children itself; an ambient plan from the
        // caller's environment must not leak in.
        .env_remove("SPO_CHAOS")
        .output()
        .expect("spo binary runs")
}

/// The same seed replays the same schedules: modes, per-schedule seeds,
/// injected and recovered counts, byte for byte.
#[test]
fn soak_is_replayable_from_a_single_seed() {
    let first = spo(&["chaos", "soak", "--seed", "5", "--schedules", "6"]);
    assert_eq!(
        first.status.code(),
        Some(0),
        "soak holds its invariants: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = spo(&["chaos", "soak", "--seed", "5", "--schedules", "6"]);
    assert_eq!(second.status.code(), Some(0));
    assert_eq!(
        first.stdout, second.stdout,
        "seeded soak schedules are byte-deterministic"
    );
    let text = String::from_utf8_lossy(&first.stdout);
    assert!(
        text.lines()
            .last()
            .unwrap_or("")
            .starts_with("# soak: 6 schedule(s), 0 violation(s)"),
        "summary line closes the run: {text}"
    );
}

/// A different seed draws a different schedule stream — the soak is
/// actually seeded, not fixed.
#[test]
fn soak_seed_changes_the_schedule_stream() {
    let a = spo(&["chaos", "soak", "--seed", "11", "--schedules", "4"]);
    let b = spo(&["chaos", "soak", "--seed", "12", "--schedules", "4"]);
    assert_eq!(
        a.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&a.stderr)
    );
    assert_eq!(
        b.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&b.stderr)
    );
    assert_ne!(a.stdout, b.stdout, "distinct seeds, distinct schedules");
}

/// A malformed `SPO_CHAOS` plan is a fatal usage error (exit 3) naming
/// the variable, before any analysis runs.
#[test]
fn malformed_chaos_plan_is_fatal() {
    let out = Command::new(env!("CARGO_BIN_EXE_spo"))
        .args(["check", "--help"])
        .env("SPO_CHAOS", "sites=nonsense..nope")
        .output()
        .expect("spo binary runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("SPO_CHAOS"),
        "error names the environment variable"
    );
}

/// Seed 42's first schedules draw the index mode, arming
/// `index.read.bitflip` against a compiled `.spi` file: a flip must
/// surface as the typed unusable-index failure (or hold fire and
/// reproduce the clean report), never a wrong answer — so the run
/// finishes with zero violations.
#[test]
fn soak_index_mode_holds_the_degraded_not_wrong_invariant() {
    let out = spo(&["chaos", "soak", "--seed", "42", "--schedules", "4"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "soak is clean: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("mode=index"),
        "seed 42 exercises the index mode: {stdout}"
    );
    assert!(stdout.contains("0 violation(s)"), "no violations: {stdout}");
}
