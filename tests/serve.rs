//! End-to-end tests of `spo serve`: a resident daemon on a Unix socket
//! must answer concurrent sessions with responses byte-identical to the
//! one-shot CLI, survive malformed requests, isolate over-budget work to
//! the requesting session, and drain cleanly on `shutdown`.

#![cfg(unix)]

use security_policy_oracle::obs::json::{parse, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/jir")
        .join(name)
}

fn spo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spo"))
        .args(args)
        .output()
        .expect("spo binary runs")
}

/// A running `spo serve` child plus its socket path. Shuts the daemon
/// down (and reaps the process) on drop so a failing test never leaks it.
struct Daemon {
    child: Option<Child>,
    socket: PathBuf,
}

/// The socket path [`Daemon::start`] binds for `tag` — exposed so tests
/// can pre-plant state (e.g. a stale socket file) at the same path.
fn daemon_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spo-serve-test-{}-{tag}.sock", std::process::id()))
}

impl Daemon {
    fn start(tag: &str, extra: &[&str]) -> Daemon {
        Daemon::start_env(tag, extra, &[])
    }

    /// Like [`Daemon::start`], with extra environment variables for the
    /// daemon process (used to arm `SPO_CHAOS` fault plans). The socket
    /// file is deliberately NOT removed first: startup must handle
    /// whatever is already at the path.
    fn start_env(tag: &str, extra: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let socket = daemon_socket(tag);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_spo"));
        cmd.arg("serve")
            .arg("--socket")
            .arg(&socket)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("daemon starts");
        let deadline = Instant::now() + Duration::from_secs(30);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        Daemon {
            child: Some(child),
            socket,
        }
    }

    fn connect(&self) -> Session {
        let stream = UnixStream::connect(&self.socket).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Session { stream, reader }
    }

    /// Sends `shutdown`, waits for the daemon to exit, and returns its
    /// exit code.
    fn shutdown(mut self) -> i32 {
        let mut session = self.connect();
        let bye = session.rpc(r#"{"spo-rpc":1,"id":99,"method":"shutdown"}"#);
        assert_eq!(status(&bye), "ok");
        let mut child = self.child.take().unwrap();
        let code = child.wait().expect("daemon exits").code().unwrap_or(-1);
        assert!(!self.socket.exists(), "socket file removed on drain");
        code
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

struct Session {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Session {
    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection");
        parse(line.trim_end()).expect("valid response JSON")
    }

    fn rpc(&mut self, line: &str) -> Value {
        self.send(line);
        self.recv()
    }
}

fn status(v: &Value) -> &str {
    v.get("status").and_then(Value::as_str).expect("status")
}

fn report(v: &Value) -> String {
    v.get("result")
        .and_then(|r| r.get("report"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("response carries a report: {v:?}"))
        .to_owned()
}

fn load_line(id: u64, name: &str, path: &Path) -> String {
    format!(
        r#"{{"spo-rpc":1,"id":{id},"method":"load","params":{{"name":"{name}","paths":["{}"]}}}}"#,
        path.display()
    )
}

/// Warm daemon responses for `query` and `diff` embed exactly the bytes
/// the one-shot CLI prints for the same figure-1 fixtures.
#[test]
fn daemon_reports_are_byte_identical_to_one_shot_cli() {
    let jdk = fixture("figure1_jdk.jir");
    let harmony = fixture("figure1_harmony.jir");
    let cli_analyze = spo(&["analyze", jdk.to_str().unwrap()]);
    assert!(cli_analyze.status.success());
    let cli_analyze = String::from_utf8(cli_analyze.stdout).unwrap();
    // The CLI names diffed programs "left" and "right"; loading under the
    // same names keeps the rendered report identical.
    let cli_diff = spo(&[
        "diff",
        jdk.to_str().unwrap(),
        "--vs",
        harmony.to_str().unwrap(),
    ]);
    assert_eq!(cli_diff.status.code(), Some(1), "figure 1 has findings");
    let cli_diff = String::from_utf8(cli_diff.stdout).unwrap();

    let daemon = Daemon::start("byteid", &["--no-cache"]);
    let mut s = daemon.connect();
    assert_eq!(status(&s.rpc(&load_line(1, "left", &jdk))), "ok");
    assert_eq!(status(&s.rpc(&load_line(2, "right", &harmony))), "ok");
    let q = s.rpc(r#"{"spo-rpc":1,"id":3,"method":"query","params":{"name":"left"}}"#);
    assert_eq!(status(&q), "ok");
    assert_eq!(report(&q), cli_analyze, "analyze bytes match the CLI");
    let d =
        s.rpc(r#"{"spo-rpc":1,"id":4,"method":"diff","params":{"left":"left","right":"right"}}"#);
    assert_eq!(status(&d), "ok");
    assert_eq!(report(&d), cli_diff, "diff bytes match the CLI");
    assert_eq!(
        d.get("result")
            .and_then(|r| r.get("exit_code"))
            .and_then(Value::as_u64),
        Some(1),
        "daemon reports the CLI's would-be exit code"
    );
    assert_eq!(daemon.shutdown(), 0);
}

/// Eight concurrent sessions interleaving `query`, `diff`, and `stats`
/// all observe identical report bytes, matching the one-shot CLI.
#[test]
fn concurrent_sessions_get_identical_bytes() {
    let jdk = fixture("figure1_jdk.jir");
    let harmony = fixture("figure1_harmony.jir");
    let cli_analyze = String::from_utf8(spo(&["analyze", jdk.to_str().unwrap()]).stdout).unwrap();
    let cli_diff = String::from_utf8(
        spo(&[
            "diff",
            jdk.to_str().unwrap(),
            "--vs",
            harmony.to_str().unwrap(),
        ])
        .stdout,
    )
    .unwrap();

    let daemon = Daemon::start("concurrent", &["--workers", "4", "--no-cache"]);
    let mut warm = daemon.connect();
    assert_eq!(status(&warm.rpc(&load_line(1, "left", &jdk))), "ok");
    assert_eq!(status(&warm.rpc(&load_line(2, "right", &harmony))), "ok");

    let results: Vec<(Vec<String>, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client| {
                let daemon = &daemon;
                scope.spawn(move || {
                    let mut s = daemon.connect();
                    let mut queries = Vec::new();
                    let mut diffs = Vec::new();
                    for round in 0..3 {
                        let q = s.rpc(&format!(
                            r#"{{"spo-rpc":1,"id":{},"method":"query","params":{{"name":"left"}}}}"#,
                            client * 100 + round
                        ));
                        assert_eq!(status(&q), "ok");
                        queries.push(report(&q));
                        let d = s.rpc(&format!(
                            r#"{{"spo-rpc":1,"id":{},"method":"diff","params":{{"left":"left","right":"right"}}}}"#,
                            client * 100 + round + 50
                        ));
                        assert_eq!(status(&d), "ok");
                        diffs.push(report(&d));
                        let stats = s.rpc(r#"{"spo-rpc":1,"method":"stats"}"#);
                        assert_eq!(status(&stats), "ok");
                    }
                    (queries, diffs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (queries, diffs) in &results {
        for q in queries {
            assert_eq!(q, &cli_analyze, "every query response matches the CLI");
        }
        for d in diffs {
            assert_eq!(d, &cli_diff, "every diff response matches the CLI");
        }
    }
    assert_eq!(daemon.shutdown(), 0);
}

/// Malformed traffic — garbage JSON, an unknown method, an oversized
/// line — gets a typed error and the session keeps working.
#[test]
fn malformed_requests_leave_the_session_alive() {
    let jdk = fixture("figure1_jdk.jir");
    let daemon = Daemon::start("malformed", &["--no-cache", "--max-line-bytes", "4096"]);
    let mut s = daemon.connect();
    assert_eq!(status(&s.rpc(&load_line(1, "lib", &jdk))), "ok");

    let kind = |v: &Value| {
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str)
            .map(str::to_owned)
            .expect("typed error kind")
    };
    let garbage = s.rpc("this is not json at all {{{");
    assert_eq!(status(&garbage), "error");
    assert_eq!(kind(&garbage), "parse");

    let unknown = s.rpc(r#"{"spo-rpc":1,"id":7,"method":"frobnicate"}"#);
    assert_eq!(status(&unknown), "error");
    assert_eq!(kind(&unknown), "unknown-method");
    assert_eq!(
        unknown.get("id").and_then(Value::as_u64),
        Some(7),
        "the id still correlates the error"
    );

    let oversized = s.rpc(&format!(
        r#"{{"spo-rpc":1,"id":8,"method":"query","params":{{"name":"{}"}}}}"#,
        "x".repeat(8192)
    ));
    assert_eq!(status(&oversized), "error");
    assert_eq!(kind(&oversized), "oversized");

    let missing = s.rpc(r#"{"spo-rpc":1,"id":9,"method":"query","params":{"name":"nope"}}"#);
    assert_eq!(status(&missing), "error");
    assert_eq!(kind(&missing), "not-found");

    let zero = s.rpc(r#"{"spo-rpc":1,"id":10,"method":"stats","timeout_ms":0}"#);
    assert_eq!(status(&zero), "error");
    assert_eq!(kind(&zero), "protocol");

    // The same session still serves real work after all of the above.
    let q = s.rpc(r#"{"spo-rpc":1,"id":11,"method":"query","params":{"name":"lib"}}"#);
    assert_eq!(status(&q), "ok");
    assert!(report(&q).contains("entry "));
    assert_eq!(daemon.shutdown(), 0);
}

/// A request exceeding its `timeout_ms` comes back `degraded` with typed
/// diagnostics while another session's warm queries stay `ok`.
#[test]
fn over_budget_requests_degrade_without_disturbing_other_sessions() {
    let jdk = fixture("figure1_jdk.jir");
    let harmony = fixture("figure1_harmony.jir");
    // Every governed root sleeps 200 ms, so a 1 ms admission deadline
    // reliably trips on cold analyses; warm lookups never run the engine
    // and cannot trip.
    let daemon = Daemon::start(
        "timeout",
        &["--no-cache", "--inject-sleep-ms", "200", "--workers", "2"],
    );
    let mut warm = daemon.connect();
    assert_eq!(status(&warm.rpc(&load_line(1, "left", &jdk))), "ok");
    assert_eq!(status(&warm.rpc(&load_line(2, "cold", &harmony))), "ok");
    // Warm "left" up without a timeout (the sleeps just make it slow).
    let a = warm.rpc(r#"{"spo-rpc":1,"id":3,"method":"analyze","params":{"name":"left"}}"#);
    assert_eq!(status(&a), "ok");

    let mut other = daemon.connect();
    let degraded = other
        .rpc(r#"{"spo-rpc":1,"id":4,"method":"analyze","params":{"name":"cold"},"timeout_ms":1}"#);
    assert_eq!(status(&degraded), "degraded");
    let diags = degraded
        .get("diagnostics")
        .and_then(|d| match d {
            Value::Array(items) => Some(items),
            _ => None,
        })
        .expect("degraded response carries diagnostics");
    assert!(!diags.is_empty());
    assert!(
        diags
            .iter()
            .any(|d| { d.get("cause").and_then(Value::as_str) == Some("deadline") }),
        "deadline cause surfaced: {degraded:?}"
    );
    assert_eq!(
        degraded
            .get("result")
            .and_then(|r| r.get("exit_code"))
            .and_then(Value::as_u64),
        Some(2),
        "degraded maps to the CLI's exit code 2"
    );

    // The other session's warm program is untouched by the trip.
    let q = warm.rpc(r#"{"spo-rpc":1,"id":5,"method":"query","params":{"name":"left"}}"#);
    assert_eq!(status(&q), "ok");
    assert!(report(&q).contains("entry "));
    assert_eq!(daemon.shutdown(), 0);
}

/// `reload` picks up edited sources; with a persistent cache attached the
/// unchanged cone warm-starts (cache hits > 0) and queries serve the new
/// answer.
#[test]
fn reload_reanalyzes_edits_through_the_cache() {
    let dir = std::env::temp_dir().join(format!("spo-serve-test-{}-reload", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("lib.jir");
    std::fs::copy(fixture("figure1_jdk.jir"), &source).unwrap();
    let daemon = Daemon::start(
        "reload",
        &["--cache-dir", dir.join("cache").to_str().unwrap()],
    );
    let mut s = daemon.connect();
    assert_eq!(status(&s.rpc(&load_line(1, "lib", &source))), "ok");
    let before = report(&s.rpc(r#"{"spo-rpc":1,"id":2,"method":"query","params":{"name":"lib"}}"#));
    // Drop one check from one method body. The program's structure (class
    // set, signatures) is unchanged, so every root whose cone avoids the
    // edited method re-keys successfully and warm-starts from the cache.
    let edited = std::fs::read_to_string(&source)
        .unwrap()
        .replace("    virtualinvoke sm.checkAccept(host, port);\n", "");
    std::fs::write(&source, edited).unwrap();
    let reloaded = s.rpc(r#"{"spo-rpc":1,"id":3,"method":"reload","params":{"name":"lib"}}"#);
    assert_eq!(status(&reloaded), "ok");
    let rows = reloaded
        .get("result")
        .and_then(|r| r.get("reanalyzed"))
        .and_then(|v| match v {
            Value::Array(items) => Some(items),
            _ => None,
        })
        .expect("reload summarizes re-analyzed option sets");
    assert_eq!(rows.len(), 1);
    let hits = rows[0].get("cache_hits").and_then(Value::as_u64).unwrap();
    let misses = rows[0].get("cache_misses").and_then(Value::as_u64).unwrap();
    assert!(
        hits > 0,
        "unchanged cones warm-start from the cache: {reloaded:?}"
    );
    assert!(misses > 0, "the edited cone recomputes: {reloaded:?}");
    let after = report(&s.rpc(r#"{"spo-rpc":1,"id":4,"method":"query","params":{"name":"lib"}}"#));
    assert_ne!(before, after);
    assert!(before.contains("checkAccept"), "{before}");
    assert!(!after.contains("checkAccept"), "{after}");
    assert_eq!(daemon.shutdown(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `spo rpc` drives a daemon end to end and folds response statuses into
/// its exit code.
#[test]
fn rpc_client_round_trips_and_maps_exit_codes() {
    let jdk = fixture("figure1_jdk.jir");
    let daemon = Daemon::start("rpc", &["--no-cache"]);
    let socket = daemon.socket.to_str().unwrap().to_owned();
    let ok = spo(&[
        "rpc",
        "--socket",
        &socket,
        &format!(
            r#"{{"spo-rpc":1,"id":1,"method":"load","params":{{"name":"lib","paths":["{}"]}}}}"#,
            jdk.display()
        ),
        r#"{"spo-rpc":1,"id":2,"method":"query","params":{"name":"lib"}}"#,
        r#"{"spo-rpc":1,"id":3,"method":"stats"}"#,
    ]);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert_eq!(stdout.lines().count(), 3, "one response line per request");
    for line in stdout.lines() {
        assert_eq!(status(&parse(line).unwrap()), "ok");
    }
    let err = spo(&[
        "rpc",
        "--socket",
        &socket,
        r#"{"spo-rpc":1,"method":"nope"}"#,
    ]);
    assert_eq!(err.status.code(), Some(3), "error responses exit 3");
    assert_eq!(daemon.shutdown(), 0);
}

/// Seeded fuzz loop over the wire protocol: requests split into random
/// chunks, garbage interleaves, oversized-then-valid lines, and mid-frame
/// disconnects must each leave the daemon healthy enough to answer the
/// next well-formed request byte-identically.
#[test]
fn adversarial_byte_streams_never_wedge_the_daemon() {
    use spo_rng::SmallRng;
    let jdk = fixture("figure1_jdk.jir");
    let load = format!("lib={}", jdk.display());
    let daemon = Daemon::start(
        "fuzz",
        &["--no-cache", "--max-line-bytes", "4096", "--load", &load],
    );
    let query = r#"{"spo-rpc":1,"id":7,"method":"query","params":{"name":"lib"}}"#;
    let want = report(&daemon.connect().rpc(query));
    let mut rng = SmallRng::seed_from_u64(0xC4A05);
    for round in 0..24u32 {
        let mut s = daemon.connect();
        match rng.gen_range(0..4u32) {
            0 => {
                // The valid request, dribbled in random partial writes.
                let bytes = format!("{query}\n").into_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    let n = (1 + rng.gen_range(0..9usize)).min(bytes.len() - i);
                    s.stream.write_all(&bytes[i..i + n]).expect("chunk");
                    s.stream.flush().expect("flush");
                    i += n;
                    if rng.gen_bool(0.2) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                let v = s.recv();
                assert_eq!(status(&v), "ok", "round {round}: split frame");
                assert_eq!(report(&v), want, "round {round}: split frame bytes");
            }
            1 => {
                // Garbage line (never starting with '{'), then the real
                // request on the same connection.
                let len = 1 + rng.gen_range(0..48usize);
                let garbage: String = (0..len)
                    .map(|k| {
                        let c = (0x23 + rng.gen_range(0..0x5au8)) as char;
                        if k == 0 && c == '{' {
                            'g'
                        } else {
                            c
                        }
                    })
                    .collect();
                let e = s.rpc(&garbage);
                assert_eq!(status(&e), "error", "round {round}: garbage rejected");
                let v = s.rpc(query);
                assert_eq!(report(&v), want, "round {round}: recovery after garbage");
            }
            2 => {
                // A line past --max-line-bytes, then the real request.
                let big = "x".repeat(4096 + rng.gen_range(0..4096usize));
                let e = s.rpc(&big);
                assert_eq!(status(&e), "error", "round {round}: oversized rejected");
                let v = s.rpc(query);
                assert_eq!(report(&v), want, "round {round}: recovery after oversize");
            }
            _ => {
                // Mid-frame disconnect: a partial request with no
                // terminator, then the socket torn down.
                let cut = 1 + rng.gen_range(0..query.len() - 1);
                s.stream.write_all(&query.as_bytes()[..cut]).expect("part");
                s.stream.flush().expect("flush");
                drop(s);
                let v = daemon.connect().rpc(query);
                assert_eq!(report(&v), want, "round {round}: fresh session after cut");
            }
        }
    }
    assert_eq!(daemon.shutdown(), 0);
}

/// A socket file left behind by a crashed daemon must not block startup:
/// the new daemon detects that nobody answers and takes the address over.
#[test]
fn stale_socket_file_is_taken_over_on_startup() {
    let path = daemon_socket("stale");
    let _ = std::fs::remove_file(&path);
    // Bind and drop without unlinking — exactly the wreckage a SIGKILLed
    // daemon leaves.
    let listener = std::os::unix::net::UnixListener::bind(&path).expect("plant stale socket");
    drop(listener);
    assert!(path.exists(), "stale socket file planted");
    let daemon = Daemon::start("stale", &["--no-cache"]);
    // The planted file satisfies start()'s existence poll before the
    // daemon has reclaimed the address; wait until it actually answers.
    let deadline = Instant::now() + Duration::from_secs(30);
    while UnixStream::connect(&daemon.socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never reclaimed socket");
        std::thread::sleep(Duration::from_millis(10));
    }
    let pong = daemon
        .connect()
        .rpc(r#"{"spo-rpc":1,"id":1,"method":"stats"}"#);
    assert_eq!(status(&pong), "ok", "daemon serves over the reclaimed path");
    assert_eq!(daemon.shutdown(), 0);
}

/// With a `serve.conn.drop:once` fault armed in the daemon, the first
/// response is cut mid-frame — `spo rpc` must reconnect, retry the
/// idempotent request, and exit 0 with stdout identical to an
/// undisturbed run.
#[test]
fn rpc_retries_recover_from_injected_connection_drop() {
    let jdk = fixture("figure1_jdk.jir");
    let load = format!("lib={}", jdk.display());
    let clean = Daemon::start("retryclean", &["--no-cache", "--load", &load]);
    let query = r#"{"spo-rpc":1,"id":4,"method":"query","params":{"name":"lib"}}"#;
    let baseline = spo(&["rpc", "--socket", clean.socket.to_str().unwrap(), query]);
    assert_eq!(baseline.status.code(), Some(0));
    assert_eq!(clean.shutdown(), 0);

    let daemon = Daemon::start_env(
        "retrydrop",
        &["--no-cache", "--load", &load],
        &[("SPO_CHAOS", "seed=1,sites=serve.conn.drop:once")],
    );
    let out = spo(&[
        "rpc",
        "--socket",
        daemon.socket.to_str().unwrap(),
        "--retries",
        "5",
        "--retry-base-ms",
        "5",
        query,
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "retries absorb the injected drop: {stderr}"
    );
    assert_eq!(
        out.stdout, baseline.stdout,
        "retried responses are byte-identical to the undisturbed run"
    );
    assert!(
        stderr.contains("retrying"),
        "the reconnect is surfaced on stderr: {stderr}"
    );
    assert_eq!(daemon.shutdown(), 0);
}

/// Compiles `jir` into a `.spi` index at `out` via the CLI.
fn export_index(name: &str, jir: &Path, out: &Path) {
    let run = spo(&[
        "cache",
        "export-index",
        jir.to_str().unwrap(),
        "--name",
        name,
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(
        run.status.code(),
        Some(0),
        "export-index succeeds: {}",
        String::from_utf8_lossy(&run.stderr)
    );
}

/// A daemon answering from a preloaded compiled index must be
/// indistinguishable from one running full analyses: same query and diff
/// response bytes, and — the regression this pins — the same typed
/// `not-found` error (kind and exit code 3) for a library neither daemon
/// has loaded.
#[test]
fn warm_index_daemon_matches_analysis_daemon_and_errors_uniformly() {
    let jdk = fixture("figure1_jdk.jir");
    let harmony = fixture("figure1_harmony.jir");
    let dir = std::env::temp_dir().join(format!("spo-serve-index-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");
    let left_spi = dir.join("left.spi");
    let right_spi = dir.join("right.spi");
    export_index("left", &jdk, &left_spi);
    export_index("right", &harmony, &right_spi);

    let query = r#"{"spo-rpc":1,"id":1,"method":"query","params":{"name":"left"}}"#;
    let missing = r#"{"spo-rpc":1,"id":2,"method":"query","params":{"name":"nope"}}"#;
    let diff = r#"{"spo-rpc":1,"id":3,"method":"diff","params":{"left":"left","right":"right"}}"#;

    // Analysis-served baseline.
    let left_load = format!("left={}", jdk.display());
    let right_load = format!("right={}", harmony.display());
    let analysis = Daemon::start(
        "ixbase",
        &["--no-cache", "--load", &left_load, "--load", &right_load],
    );
    let sock = analysis.socket.to_str().unwrap().to_owned();
    let base_query = spo(&["rpc", "--socket", &sock, query]);
    assert_eq!(base_query.status.code(), Some(0));
    let base_missing = spo(&["rpc", "--socket", &sock, missing]);
    assert_eq!(
        base_missing.status.code(),
        Some(3),
        "analysis-served missing library exits 3"
    );
    let base_diff = spo(&["rpc", "--socket", &sock, diff]);
    assert_eq!(base_diff.status.code(), Some(0), "diff response is ok");
    assert_eq!(analysis.shutdown(), 0);

    // Index-served run: same requests, byte-identical answers.
    let left_ix = format!("left={}", left_spi.display());
    let right_ix = format!("right={}", right_spi.display());
    let indexed = Daemon::start(
        "ixwarm",
        &["--no-cache", "--index", &left_ix, "--index", &right_ix],
    );
    let sock = indexed.socket.to_str().unwrap().to_owned();
    let ix_query = spo(&["rpc", "--socket", &sock, query]);
    assert_eq!(ix_query.status.code(), Some(0));
    assert_eq!(
        ix_query.stdout, base_query.stdout,
        "index-served query bytes match the analysis daemon"
    );
    let ix_missing = spo(&["rpc", "--socket", &sock, missing]);
    assert_eq!(
        ix_missing.status.code(),
        Some(3),
        "index-served missing library exits 3 too"
    );
    assert_eq!(
        ix_missing.stdout, base_missing.stdout,
        "the not-found error is byte-identical across serving modes"
    );
    let v = parse(String::from_utf8_lossy(&ix_missing.stdout).trim()).expect("error json");
    let kind = v
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str);
    assert_eq!(kind, Some("not-found"), "typed error kind");
    let ix_diff = spo(&["rpc", "--socket", &sock, diff]);
    assert_eq!(ix_diff.status.code(), Some(0));
    assert_eq!(
        ix_diff.stdout, base_diff.stdout,
        "index-served diff bytes match the analysis daemon"
    );
    assert_eq!(indexed.shutdown(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A damaged preloaded index must not take the daemon down or produce a
/// wrong answer: startup logs the failure, and requests for that name
/// fall back to whatever the registry holds — the full-analysis path
/// when the same name was `--load`ed, a typed `not-found` otherwise.
#[test]
fn corrupt_index_preload_falls_back_to_full_analysis() {
    let jdk = fixture("figure1_jdk.jir");
    let dir = std::env::temp_dir().join(format!("spo-serve-badix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");
    let spi = dir.join("lib.spi");
    export_index("lib", &jdk, &spi);
    let mut bytes = std::fs::read(&spi).expect("read index");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&spi, &bytes).expect("write damaged index");

    let load = format!("lib={}", jdk.display());
    let clean = Daemon::start("badixbase", &["--no-cache", "--load", &load]);
    let query = r#"{"spo-rpc":1,"id":1,"method":"query","params":{"name":"lib"}}"#;
    let baseline = spo(&["rpc", "--socket", clean.socket.to_str().unwrap(), query]);
    assert_eq!(baseline.status.code(), Some(0));
    assert_eq!(clean.shutdown(), 0);

    let ix = format!("lib={}", spi.display());
    let daemon = Daemon::start("badix", &["--no-cache", "--index", &ix, "--load", &load]);
    let out = spo(&["rpc", "--socket", daemon.socket.to_str().unwrap(), query]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the damaged index never reaches the client"
    );
    assert_eq!(
        out.stdout, baseline.stdout,
        "fallback analysis serves the same bytes a clean daemon would"
    );
    assert_eq!(daemon.shutdown(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
