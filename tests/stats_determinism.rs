//! Property: the deterministic sections of the observability snapshot —
//! `counters` and `histograms` — are byte-identical for any worker count.
//!
//! The engine's contract is that analysis *results* don't depend on the
//! worker count; the observability layer extends that contract to its
//! deterministic metrics via the frame-commit protocol (only frames whose
//! summary newly entered the store, plus top frames, count — race losers
//! and recursion-tainted frames land in the scheduling-dependent `work`
//! section). This suite runs the same corpus under `--jobs 1/2/8` and
//! compares [`Snapshot::deterministic_json`] byte-for-byte.
//!
//! [`Snapshot::deterministic_json`]: spo_obs::Snapshot::deterministic_json

use spo_core::{AnalysisOptions, MemoScope};
use spo_corpus::{generate, CorpusConfig, Lib};
use spo_engine::AnalysisEngine;
use spo_obs::Recorder;

/// Corpus seeds, same spread as `tests/properties.rs`.
const SEEDS: [u64; 4] = [0, 131, 598, 923];

const JOBS: [usize; 3] = [1, 2, 8];

fn snapshot_for(
    program: &spo_jir::Program,
    jobs: usize,
    options: AnalysisOptions,
) -> spo_obs::Snapshot {
    let rec = Recorder::new();
    let engine = AnalysisEngine::new(jobs).with_recorder(rec.clone());
    let (_, _) = engine.analyze_library(program, "corpus", options);
    rec.snapshot()
}

#[test]
fn deterministic_stats_identical_across_jobs() {
    for seed in SEEDS {
        let corpus = generate(&CorpusConfig { seed, scale: 0.004 });
        let program = corpus.program(Lib::Jdk);
        let baseline = snapshot_for(program, 1, AnalysisOptions::default());
        let expected = baseline.deterministic_json();
        assert!(
            !baseline.counters.is_empty(),
            "seed {seed}: no counters recorded"
        );
        for jobs in &JOBS[1..] {
            let snap = snapshot_for(program, *jobs, AnalysisOptions::default());
            assert_eq!(
                snap.deterministic_json(),
                expected,
                "seed {seed}: counters/histograms diverged at jobs={jobs}"
            );
        }
    }
}

#[test]
fn deterministic_stats_identical_across_jobs_for_every_memo_scope() {
    let corpus = generate(&CorpusConfig {
        seed: 262,
        scale: 0.004,
    });
    let program = corpus.program(Lib::Harmony);
    for memo in [MemoScope::None, MemoScope::PerEntry, MemoScope::Global] {
        let options = AnalysisOptions {
            memo,
            ..Default::default()
        };
        let expected = snapshot_for(program, 1, options).deterministic_json();
        for jobs in &JOBS[1..] {
            let snap = snapshot_for(program, *jobs, options);
            assert_eq!(
                snap.deterministic_json(),
                expected,
                "memo {memo:?}: counters/histograms diverged at jobs={jobs}"
            );
        }
    }
}

/// The work section is allowed to vary between runs, but its totals must
/// stay consistent with the deterministic sections: committed + speculative
/// + tainted frames account for every frame the analysis computed.
#[test]
fn work_section_accounts_for_all_computed_frames() {
    let corpus = generate(&CorpusConfig {
        seed: 417,
        scale: 0.004,
    });
    let program = corpus.program(Lib::Classpath);
    for jobs in JOBS {
        let snap = snapshot_for(program, jobs, AnalysisOptions::default());
        let committed = snap.counters["ispa.frames"];
        let speculative = snap.work["ispa.speculative.frames"];
        let tainted = snap.work["ispa.tainted.frames"];
        let computed = snap.work["ispa.frames_analyzed"];
        // `frames_analyzed` also counts bodyless (native/abstract) frames,
        // which never reach the commit protocol.
        assert!(
            committed + speculative + tainted <= computed,
            "jobs {jobs}: {committed} + {speculative} + {tainted} > {computed}"
        );
        assert!(committed > 0, "jobs {jobs}: nothing committed");
    }
}
