//! End-to-end oracle runs over every paper figure: the reproduction's
//! ground truth for §2 and §6.2–§6.4.

use security_policy_oracle::{compare_implementations, PairingReport};
use spo_core::{
    AnalysisOptions, Check, CheckSet, DifferenceKind, EventDef, EventKey, RootCause, Side,
};
use spo_corpus::figures::{
    Figure, FIGURE1, FIGURE3, FIGURE4, FIGURE5, FIGURE6, FIGURE7, FIGURE8, FP_GET_PROPERTY,
};
use spo_corpus::Lib;

fn run(fig: Figure, a: Lib, b: Lib, options: AnalysisOptions) -> PairingReport {
    let left = fig.program(a);
    let right = fig.program(b);
    compare_implementations(&left, a.name(), &right, b.name(), options)
}

#[test]
fn figure_1_harmony_missing_check_accept() {
    let report = run(FIGURE1, Lib::Jdk, Lib::Harmony, AnalysisOptions::default());
    assert_eq!(report.groups.len(), 1, "{}", report.render());
    let g = &report.groups[0];
    assert_eq!(g.representative.delta, CheckSet::of(Check::Accept));
    assert!(matches!(
        g.representative.kind,
        DifferenceKind::CheckSetMismatch { .. }
    ));
    // The missing check is detected at the interprocedural level (the
    // checks live in connectInternal, a callee of the entry point).
    assert_eq!(g.cause, RootCause::Interprocedural);
    assert!(g
        .representative
        .origins
        .contains("java.net.DatagramSocket.connectInternal"));
}

#[test]
fn figure_2_policies_match_paper() {
    // The JDK policies of Figure 2: must {} and may
    // {{checkMulticast},{checkConnect,checkAccept}} (plus the elided
    // null-manager path).
    let jdk = FIGURE1.program(Lib::Jdk);
    let analyzer = spo_core::Analyzer::new(&jdk, AnalysisOptions::default());
    let lib = analyzer.analyze_library("jdk");
    let entry = &lib.entries["java.net.DatagramSocket.connect(java.net.InetAddress,int)"];
    let ret = &entry.events[&EventKey::ApiReturn];
    assert_eq!(ret.must, CheckSet::empty());
    let multicast: CheckSet = [Check::Multicast].into_iter().collect();
    let connect_accept: CheckSet = [Check::Connect, Check::Accept].into_iter().collect();
    let disjuncts: Vec<CheckSet> = ret
        .may_paths
        .disjuncts()
        .iter()
        .map(|&d| CheckSet::from_bits(d))
        .collect();
    assert!(disjuncts.contains(&multicast), "{disjuncts:?}");
    assert!(disjuncts.contains(&connect_accept), "{disjuncts:?}");
    // Plus the security-manager-absent path the paper's figures elide.
    assert!(disjuncts.contains(&CheckSet::empty()));
    assert_eq!(disjuncts.len(), 3);
}

#[test]
fn figure_3_needs_broad_events() {
    // Narrow: identical policies, no report.
    let narrow = run(FIGURE3, Lib::Jdk, Lib::Harmony, AnalysisOptions::default());
    assert!(narrow.groups.is_empty(), "{}", narrow.render());
    // Broad: the unguarded read of data1 differs.
    let broad = run(
        FIGURE3,
        Lib::Jdk,
        Lib::Harmony,
        AnalysisOptions {
            events: EventDef::Broad,
            ..Default::default()
        },
    );
    assert!(!broad.groups.is_empty());
    let found = broad.diff.differences.iter().any(|d| {
        matches!(
            &d.kind,
            DifferenceKind::CheckSetMismatch { event: EventKey::DataRead(n) }
                | DifferenceKind::MustMayMismatch { event: EventKey::DataRead(n), .. }
            if n == "data1"
        ) && d.delta.contains(Check::Read)
    });
    assert!(found, "{}", broad.render());
}

#[test]
fn figure_4_icp_eliminates_false_positive() {
    let with_icp = run(FIGURE4, Lib::Jdk, Lib::Harmony, AnalysisOptions::default());
    assert!(with_icp.groups.is_empty(), "{}", with_icp.render());
    let without = run(
        FIGURE4,
        Lib::Jdk,
        Lib::Harmony,
        AnalysisOptions {
            icp: false,
            ..Default::default()
        },
    );
    assert_eq!(without.groups.len(), 1, "{}", without.render());
    assert_eq!(
        without.groups[0].representative.delta,
        CheckSet::of(Check::Permission)
    );
}

#[test]
fn figure_5_jdk_missing_check_read() {
    let report = run(
        FIGURE5,
        Lib::Jdk,
        Lib::Classpath,
        AnalysisOptions::default(),
    );
    let vuln = report
        .groups
        .iter()
        .find(|g| g.representative.delta.contains(Check::Read))
        .unwrap_or_else(|| panic!("no checkRead difference:\n{}", report.render()));
    // The culprit is Classpath's loadLib, where the check JDK lacks lives.
    assert!(vuln
        .representative
        .origins
        .contains("java.lang.RuntimeLib.loadLib"));
    assert_eq!(vuln.cause, RootCause::Interprocedural);
    // JDK is the side missing the check: its may set lacks checkRead.
    assert!(!vuln.representative.left.may.contains(Check::Read));
    assert!(vuln.representative.right.may.contains(Check::Read));
}

#[test]
fn figure_6_harmony_missing_check_connect_via_api_return() {
    let report = run(FIGURE6, Lib::Jdk, Lib::Harmony, AnalysisOptions::default());
    assert_eq!(report.groups.len(), 1, "{}", report.render());
    let g = &report.groups[0];
    // Harmony performs no checks at all: a case-2 missing policy.
    assert!(matches!(
        g.representative.kind,
        DifferenceKind::MissingPolicy {
            checked: Side::Left
        }
    ));
    assert!(g.representative.delta.contains(Check::Connect));
    // Detectable by a purely intraprocedural analysis: the checks and the
    // return are in the entry method itself.
    assert_eq!(g.cause, RootCause::Intraprocedural);
}

#[test]
fn figure_7_classpath_missing_all_checks() {
    let report = run(
        FIGURE7,
        Lib::Jdk,
        Lib::Classpath,
        AnalysisOptions::default(),
    );
    assert_eq!(report.groups.len(), 1, "{}", report.render());
    let g = &report.groups[0];
    assert!(matches!(
        g.representative.kind,
        DifferenceKind::MissingPolicy {
            checked: Side::Left
        }
    ));
    assert_eq!(g.representative.delta, CheckSet::of(Check::Connect));
    // Harmony agrees with JDK: no report there.
    let jh = run(FIGURE7, Lib::Jdk, Lib::Harmony, AnalysisOptions::default());
    assert!(jh.groups.is_empty());
}

#[test]
fn figure_8_check_exit_interop_difference() {
    let report = run(FIGURE8, Lib::Jdk, Lib::Harmony, AnalysisOptions::default());
    assert_eq!(report.groups.len(), 1, "{}", report.render());
    let g = &report.groups[0];
    assert_eq!(g.representative.delta, CheckSet::of(Check::Exit));
    // The checkExit is performed inside System.exit.
    assert!(g.representative.origins.contains("java.lang.System.exit"));
}

#[test]
fn false_positive_get_property_reported_as_3a() {
    let report = run(
        FP_GET_PROPERTY,
        Lib::Jdk,
        Lib::Harmony,
        AnalysisOptions::default(),
    );
    assert_eq!(report.groups.len(), 1);
    let g = &report.groups[0];
    let expected: CheckSet = [Check::Permission, Check::SecurityAccess]
        .into_iter()
        .collect();
    assert_eq!(g.representative.delta, expected);
    // This one is visible intraprocedurally (checks inline in the entry).
    assert_eq!(g.cause, RootCause::Intraprocedural);
}

#[test]
fn identical_implementations_are_clean() {
    // Comparing an implementation against itself must produce nothing —
    // the no-intrinsic-false-positives property.
    for fig in [FIGURE1, FIGURE4, FIGURE7, FIGURE8] {
        let p = fig.program(Lib::Jdk);
        let report = compare_implementations(&p, "a", &p, "b", AnalysisOptions::default());
        assert!(
            report.groups.is_empty(),
            "{}: {}",
            fig.name,
            report.render()
        );
    }
}

#[test]
fn section_6_3_charset_provider_interop_difference() {
    // §6.3: "Classpath contains code that performs checkPermission(new
    // RuntimePermission(\"charsetProvider\")), whereas JDK and Harmony do
    // not" — an interoperability difference rooted in Classpath's dynamic
    // class loading.
    use spo_corpus::figures::INTEROP_CHARSET;
    let report = run(
        INTEROP_CHARSET,
        Lib::Jdk,
        Lib::Classpath,
        AnalysisOptions::default(),
    );
    assert_eq!(report.groups.len(), 1, "{}", report.render());
    let g = &report.groups[0];
    assert!(g.representative.delta.contains(Check::Permission));
    // Classpath is the side with the check (case 2: JDK performs none).
    assert!(matches!(
        g.representative.kind,
        DifferenceKind::MissingPolicy {
            checked: Side::Right
        }
    ));
    // Harmony agrees with JDK: no difference.
    let jh = run(
        INTEROP_CHARSET,
        Lib::Jdk,
        Lib::Harmony,
        AnalysisOptions::default(),
    );
    assert!(jh.groups.is_empty());
}
