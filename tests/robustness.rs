//! Fuzz-style robustness over the committed `.jir` fixtures: mutated
//! inputs must never panic the pipeline and must terminate under a small
//! [`Budget`]; an injected panic in one root must leave every other
//! root's exported report bytes unchanged.

use security_policy_oracle::core::{export_policies, AnalysisOptions};
use security_policy_oracle::engine::AnalysisEngine;
use security_policy_oracle::guard::{Budget, Cause, GuardConfig};
use spo_jir::{parse_into_recovering, Program};
use spo_rng::SmallRng;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/jir")
        .join(name);
    std::fs::read_to_string(path).unwrap()
}

/// Grammar vocabulary spliced into fixtures to steer mutations toward
/// deeper parser paths than raw byte noise reaches.
const SPLICES: &[&str] = &[
    "class",
    "interface",
    "method",
    "field",
    "{",
    "}",
    ";",
    "goto",
    "if",
    "return",
    "(",
    ")",
    "virtualinvoke",
    "local",
    "=",
    ".",
    ",",
    "public",
    "native",
];

/// One mutation round: a byte flip, a truncation, or a token splice.
fn mutate(bytes: &mut Vec<u8>, rng: &mut SmallRng) {
    if bytes.is_empty() {
        return;
    }
    let i = rng.gen_range(0..bytes.len() as u32) as usize;
    match rng.gen_range(0..3u32) {
        0 => bytes[i] = rng.gen_range(0..256u32) as u8,
        1 => bytes.truncate(i),
        _ => {
            let tok = SPLICES[rng.gen_range(0..SPLICES.len() as u32) as usize];
            let mut spliced = Vec::with_capacity(bytes.len() + tok.len() + 2);
            spliced.extend_from_slice(&bytes[..i]);
            spliced.push(b' ');
            spliced.extend_from_slice(tok.as_bytes());
            spliced.push(b' ');
            spliced.extend_from_slice(&bytes[i..]);
            *bytes = spliced;
        }
    }
}

/// Mutated fixtures: the recovering parser plus a budget-governed engine
/// run never panic and always terminate, whatever survives the mutation.
#[test]
fn mutated_fixtures_never_panic_and_terminate_under_budget() {
    for (f, name) in [
        ("figure1_jdk.jir", "jdk"),
        ("figure1_harmony.jir", "harmony"),
    ] {
        let original = fixture(f);
        for seed in 0..48u64 {
            let mut rng = SmallRng::seed_from_u64(0xf022_0000 + seed);
            let mut bytes = original.as_bytes().to_vec();
            for _ in 0..rng.gen_range(1..6u32) {
                mutate(&mut bytes, &mut rng);
            }
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let mut program = Program::new();
            let _recovery = parse_into_recovering(&src, &mut program);
            let guard = GuardConfig {
                budget: Budget::default().steps(5_000).frames(500),
                ..Default::default()
            };
            let engine = AnalysisEngine::new(2).with_guard(guard);
            let (lib, stats) = engine.analyze_library(&program, name, AnalysisOptions::default());
            // Reaching here at all means no panic escaped and the run
            // terminated; every degradation must carry a usable diagnostic.
            assert_eq!(
                stats.roots_degraded,
                lib.degraded.len() as u64,
                "seed {seed}"
            );
            for (sig, diag) in &lib.degraded {
                assert!(!sig.is_empty() && !diag.message.is_empty(), "seed {seed}");
            }
        }
    }
}

/// Panic isolation: injecting a panic into one root leaves every other
/// root's exported policy bytes identical to the clean run restricted to
/// the surviving roots.
#[test]
fn injected_panic_leaves_other_roots_report_bytes_unchanged() {
    let src = fixture("figure1_jdk.jir");
    let mut program = Program::new();
    let recovery = parse_into_recovering(&src, &mut program);
    assert!(recovery.is_clean());
    let options = AnalysisOptions::default();
    let (clean, _) = AnalysisEngine::new(2).analyze_library(&program, "jdk", options);

    let guard = GuardConfig {
        inject_panics: vec!["DatagramSocket.connect".to_owned()],
        ..Default::default()
    };
    for jobs in [1, 2, 8] {
        let (degraded, stats) = AnalysisEngine::new(jobs)
            .with_guard(guard.clone())
            .analyze_library(&program, "jdk", options);
        assert!(stats.roots_degraded >= 1, "jobs {jobs}");
        for diag in degraded.degraded.values() {
            assert_eq!(diag.cause, Cause::Panic);
        }
        let mut restricted = clean.clone();
        restricted
            .entries
            .retain(|sig, _| !degraded.degraded.contains_key(sig));
        assert_eq!(
            export_policies(&degraded),
            export_policies(&restricted),
            "jobs {jobs}: surviving report bytes diverged"
        );
    }
}
