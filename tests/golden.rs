//! Golden-file stability tests: the exchange format and the analyzer's
//! output for the Figure 1 JDK implementation are pinned by a committed
//! fixture. A diff here means either the exchange format changed (bump the
//! format header and regenerate) or the analysis results changed
//! (investigate before regenerating!).
//!
//! Regenerate with:
//! ```text
//! cargo run -p spo-bench --release --bin gencorpus  # (or the snippet in this file's history)
//! ```

use spo_core::{export_policies, import_policies, AnalysisOptions, Analyzer};
use spo_corpus::{figures::FIGURE1, Lib};

const FIXTURE: &str = include_str!("fixtures/figure1_jdk.policies");

#[test]
fn figure1_jdk_policies_match_the_committed_fixture() {
    let p = FIGURE1.program(Lib::Jdk);
    let lib = Analyzer::new(&p, AnalysisOptions::default()).analyze_library("jdk-figure1");
    let exported = export_policies(&lib);
    assert_eq!(
        exported, FIXTURE,
        "analyzer output or exchange format drifted from the golden fixture"
    );
}

#[test]
fn committed_fixture_still_imports() {
    let lib = import_policies(FIXTURE).expect("fixture parses");
    assert_eq!(lib.name, "jdk-figure1");
    let entry = &lib.entries["java.net.DatagramSocket.connect(java.net.InetAddress,int)"];
    // The Figure 2 policy survives the round trip through the file.
    let ret = &entry.events[&spo_core::EventKey::ApiReturn];
    assert_eq!(ret.may_paths.disjuncts().len(), 3);
    assert!(ret.must.is_empty());
}
