//! Integration tests for the extension features layered on the paper's
//! core: the disjunctive diff mode, RTA resolution, resolution-rate
//! statistics, and exception differencing over the corpus.

use spo_core::{
    diff_libraries, diff_libraries_with, diff_throws, AnalysisOptions, Analyzer, DiffMode,
    PolicyDifference, ThrowsAnalyzer,
};
use spo_corpus::{generate, CorpusConfig, Lib};
use spo_resolve::{entry_points, CallGraph, Hierarchy, Rta};
use std::collections::BTreeSet;

fn corpus() -> spo_corpus::Corpus {
    generate(&CorpusConfig::test_sized())
}

#[test]
fn disjunctive_mode_is_a_superset_of_paper_mode() {
    let c = corpus();
    let jdk = Analyzer::new(c.program(Lib::Jdk), AnalysisOptions::default()).analyze_library("jdk");
    let harmony = Analyzer::new(c.program(Lib::Harmony), AnalysisOptions::default())
        .analyze_library("harmony");
    let paper = diff_libraries(&jdk, &harmony);
    let strict = diff_libraries_with(&jdk, &harmony, DiffMode::Disjunctive);
    let keys = |d: &[PolicyDifference]| -> BTreeSet<String> {
        d.iter()
            .map(|x| format!("{}#{:?}", x.signature, x.kind))
            .collect()
    };
    let pk = keys(&paper.differences);
    let sk = keys(&strict.differences);
    assert!(pk.is_subset(&sk), "strict mode must not lose reports");
    // The implementations differ only at injected bug sites, all of which
    // the paper-mode comparison already catches: no structure-only extras.
    assert_eq!(
        pk,
        sk,
        "unexpected structure-only differences: {:?}",
        sk.difference(&pk)
    );
}

#[test]
fn corpus_resolution_rate_matches_papers_97_percent_regime() {
    // "Soot's method resolution analysis ... resolves 97% of method calls
    // in the Java libraries."
    let c = corpus();
    for lib in Lib::ALL {
        let p = c.program(lib);
        let h = Hierarchy::new(p);
        let cg = CallGraph::from_entry_points(&h);
        let stats = cg.stats();
        assert!(
            stats.resolved_fraction() > 0.95,
            "{lib}: only {:.1}% of call sites resolved uniquely",
            stats.resolved_fraction() * 100.0
        );
    }
}

#[test]
fn rta_is_at_least_as_precise_as_cha_on_the_corpus() {
    let c = corpus();
    let p = c.program(Lib::Classpath);
    let h = Hierarchy::new(p);
    let roots = entry_points(p);
    let rta = Rta::build(&h, &roots);
    let (cha, rtas) = rta.compare_with_cha();
    assert_eq!(cha.total(), rtas.total());
    assert!(rtas.unique >= cha.unique);
    // RTA reaches no more methods than the CHA call graph does.
    let cg = CallGraph::build(&h, roots);
    assert!(rta.reachable().len() <= cg.reachable_count() + rta.reachable().len() / 10);
}

#[test]
fn exception_differencing_over_the_corpus_finds_figure_8() {
    let c = corpus();
    let tj = ThrowsAnalyzer::new(c.program(Lib::Jdk)).analyze_library("jdk");
    let th = ThrowsAnalyzer::new(c.program(Lib::Harmony)).analyze_library("harmony");
    let diffs = diff_throws(&tj, &th);
    let getbytes = diffs.iter().find(|d| d.signature.contains("getBytes"));
    let d = getbytes.expect("Figure 8's exception asymmetry must surface");
    assert!(d
        .only_right
        .contains("java.lang.UnsupportedOperationException"));
    // And everything reported is a genuine behavioural difference: the
    // background mass throws identically (not at all).
    for d in &diffs {
        assert!(
            !d.signature.starts_with("gen.all."),
            "background entry {} must not differ in throws",
            d.signature
        );
    }
}

#[test]
fn dominators_agree_with_must_policies_on_straight_line_checks() {
    // A check that dominates the event statement is exactly a must check
    // when no constants/privilege are involved: cross-validate the
    // dominator module against the policy analysis on a figure body.
    use spo_corpus::figures::FIGURE7;
    let p = FIGURE7.program(Lib::Jdk);
    let socket = p.class_by_str("java.net.Socket").unwrap();
    let body = p.class(socket).methods[0].body.as_ref().unwrap();
    let cfg = body.cfg();
    let dom = spo_jir::Dominators::new(&cfg);
    // Find the checkConnect call and the impl.connect call.
    let mut check_idx = None;
    let mut call_idx = None;
    for (i, s) in body.stmts.iter().enumerate() {
        if let Some(call) = s.as_call() {
            match p.str(call.callee.name) {
                "checkConnect" => check_idx = Some(i),
                "connect" => call_idx = Some(i),
                _ => {}
            }
        }
    }
    let (check_idx, call_idx) = (check_idx.unwrap(), call_idx.unwrap());
    // The check does NOT dominate the connect (the null-SecurityManager
    // path skips it) — matching the empty must policy the analysis
    // computes for this entry.
    assert!(!dom.dominates(check_idx, call_idx));
    let lib = Analyzer::new(&p, AnalysisOptions::default()).analyze_library("jdk");
    let entry = &lib.entries["java.net.Socket.connect(java.net.SocketAddress,int)"];
    let ev = entry
        .events
        .iter()
        .find(|(k, _)| matches!(k, spo_core::EventKey::Native(n) if n == "connect0"))
        .map(|(_, p)| p)
        .unwrap();
    assert!(ev.must.is_empty());
    assert!(!ev.may.is_empty());
}

#[test]
fn generated_corpus_is_lint_clean() {
    // Every reference in the generated implementations resolves: the
    // corpus has no accidental external references that the analysis
    // would silently skip.
    let c = corpus();
    for lib in Lib::ALL {
        let lints = spo_resolve::lint_program(c.program(lib));
        assert!(
            lints.is_empty(),
            "{lib}: {} lint findings, e.g. {} / {}",
            lints.len(),
            lints[0].location,
            lints[0].kind
        );
    }
}
