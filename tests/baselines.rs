//! End-to-end demonstrations of §2's claims about prior approaches:
//! complete-mediation verification false-positives on correct may-policies,
//! and code-mining misses unique patterns — while the oracle handles both.

use security_policy_oracle::compare_implementations;
use spo_core::{
    mine_rules, mining_deviations, verify_mediation, AnalysisOptions, Analyzer, Check, EventKey,
    MediationPolicy,
};
use spo_corpus::figures::FIGURE1;
use spo_corpus::{generate, BugCategory, CorpusConfig, Lib};

fn analyze(lib: Lib, fig: spo_corpus::figures::Figure) -> spo_core::LibraryPolicies {
    let program = fig.program(lib);
    Analyzer::new(&program, AnalysisOptions::default()).analyze_library(lib.name())
}

#[test]
fn mediation_verifier_flags_the_correct_jdk_implementation() {
    // Write the "obvious" manual policy for DatagramSocket.connect:
    // checkConnect must dominate the native connect. Both implementations
    // get flagged — a false positive on the correct JDK code, exactly the
    // paper's §2 argument against must-only verification.
    let policy = MediationPolicy::new(vec![(Check::Connect, EventKey::Native("connect0".into()))]);
    let jdk = analyze(Lib::Jdk, FIGURE1);
    let harmony = analyze(Lib::Harmony, FIGURE1);
    let jdk_violations = verify_mediation(&jdk, &policy);
    let harmony_violations = verify_mediation(&harmony, &policy);
    assert!(
        !jdk_violations.is_empty(),
        "the must-based verifier flags correct JDK code (its policy is MAY)"
    );
    assert!(!harmony_violations.is_empty());

    // The oracle, by contrast, flags only the difference — and only once.
    let report = compare_implementations(
        &FIGURE1.program(Lib::Jdk),
        "jdk",
        &FIGURE1.program(Lib::Harmony),
        "harmony",
        AnalysisOptions::default(),
    );
    assert_eq!(report.groups.len(), 1);
    assert!(report.groups[0]
        .representative
        .delta
        .contains(Check::Accept));
}

#[test]
fn miner_misses_figure_1_within_one_implementation() {
    // Within Harmony alone, the DatagramSocket pattern occurs once: no
    // support, no rule, no bug. "Unlike code-mining, this technique finds
    // missing checks even if they are part of a rare pattern."
    let harmony = analyze(Lib::Harmony, FIGURE1);
    for min_support in [2, 3, 5] {
        let rules = mine_rules(&harmony, min_support, 0.8);
        let deviations = mining_deviations(&harmony, &rules);
        let found = deviations.iter().any(|d| d.check == Check::Accept);
        assert!(!found, "miner should not find the unique-pattern bug");
    }
}

#[test]
fn miner_on_corpus_finds_nothing_within_a_consistent_implementation() {
    // Each implementation is internally consistent (the bugs are *between*
    // implementations), so intra-library mining at reasonable thresholds
    // yields no true findings — mirroring prior work reporting no bugs on
    // JDK/Harmony (§7.1).
    let corpus = generate(&CorpusConfig::test_sized());
    let harmony = Analyzer::new(corpus.program(Lib::Harmony), AnalysisOptions::default())
        .analyze_library("harmony");
    let rules = mine_rules(&harmony, 5, 0.9);
    let deviations = mining_deviations(&harmony, &rules);
    // Any deviations that do appear must not correspond to real injected
    // vulnerabilities in harmony (those need cross-implementation
    // comparison to see).
    let vuln_culprits: Vec<&str> = corpus
        .catalog
        .bugs
        .iter()
        .filter(|b| b.buggy_lib == Lib::Harmony && b.category == BugCategory::Vulnerability)
        .map(|b| b.culprit.as_str())
        .collect();
    for d in &deviations {
        for culprit in &vuln_culprits {
            let class_prefix = culprit.rsplit_once('.').map(|(c, _)| c).unwrap_or(culprit);
            assert!(
                !d.signature.starts_with(class_prefix),
                "miner accidentally found injected bug {culprit} via {}",
                d.signature
            );
        }
    }
}

#[test]
fn lowering_the_threshold_creates_false_positives() {
    // §1: "As the statistical threshold is lowered to include more
    // patterns, they may find more bugs, but the number of false positives
    // increases."
    let corpus = generate(&CorpusConfig::test_sized());
    let jdk =
        Analyzer::new(corpus.program(Lib::Jdk), AnalysisOptions::default()).analyze_library("jdk");
    let strict = mining_deviations(&jdk, &mine_rules(&jdk, 5, 0.95));
    let loose = mining_deviations(&jdk, &mine_rules(&jdk, 2, 0.3));
    assert!(
        loose.len() >= strict.len(),
        "looser thresholds must not reduce reports (strict {}, loose {})",
        strict.len(),
        loose.len()
    );
    assert!(
        !loose.is_empty(),
        "at low thresholds the miner drowns in deviations on the ApiReturn events"
    );
}

#[test]
fn exception_behaviour_differs_in_figure_8() {
    // §8's proposed generalization, demonstrated: Harmony's getBytes may
    // throw where JDK's exits.
    use spo_core::{diff_throws, ThrowsAnalyzer};
    use spo_corpus::figures::FIGURE8;
    let jdk = FIGURE8.program(Lib::Jdk);
    let harmony = FIGURE8.program(Lib::Harmony);
    let tj = ThrowsAnalyzer::new(&jdk).analyze_library("jdk");
    let th = ThrowsAnalyzer::new(&harmony).analyze_library("harmony");
    let diffs = diff_throws(&tj, &th);
    let getbytes = diffs
        .iter()
        .find(|d| d.signature.contains("getBytes"))
        .expect("getBytes must differ in exception behaviour");
    assert!(getbytes
        .only_right
        .contains("java.lang.UnsupportedOperationException"));
    assert!(getbytes.only_left.is_empty());
}
