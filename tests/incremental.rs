//! End-to-end tests of the persistent summary cache (`--cache-dir`):
//! warm runs are byte-identical to cold runs, a single-method edit only
//! re-analyzes the cones that contain it, and a corrupt or stale cache
//! degrades to a cold run with a warning — never a changed report or
//! exit code.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn spo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spo"))
        .args(args)
        .output()
        .expect("spo binary runs")
}

/// A fresh scratch directory per test so parallel tests never share a
/// cache or fixture.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spo-incremental-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_str().unwrap().to_owned()
}

/// Multi-class fixture: three API classes with disjoint call cones below
/// the shared `getSecurityManager` helper.
const FIXTURE: &str = r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
  method public native void checkWrite(java.lang.String file);
  method public native void checkConnect(java.lang.String host);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
class api.Files {
  method public void read(java.lang.String p) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead(p);
    staticinvoke api.Files.read0(p);
    return;
  }
  method public void write(java.lang.String p) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite(p);
    staticinvoke api.Files.write0(p);
    return;
  }
  method private static native void read0(java.lang.String p);
  method private static native void write0(java.lang.String p);
}
class api.Net {
  method public void connect(java.lang.String host) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkConnect(host);
    staticinvoke api.Net.open0(host);
    return;
  }
  method private static native void open0(java.lang.String host);
}
"#;

/// The same fixture with a body-only edit to `api.Net.connect` (the
/// check is dropped): `api.Files`' cones are untouched.
const FIXTURE_EDITED: &str = r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
  method public native void checkWrite(java.lang.String file);
  method public native void checkConnect(java.lang.String host);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
class api.Files {
  method public void read(java.lang.String p) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkRead(p);
    staticinvoke api.Files.read0(p);
    return;
  }
  method public void write(java.lang.String p) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    virtualinvoke sm.checkWrite(p);
    staticinvoke api.Files.write0(p);
    return;
  }
  method private static native void read0(java.lang.String p);
  method private static native void write0(java.lang.String p);
}
class api.Net {
  method public void connect(java.lang.String host) {
    staticinvoke api.Net.open0(host);
    return;
  }
  method private static native void open0(java.lang.String host);
}
"#;

/// The cache's single pack file (`policies.spc`), if present.
fn pack_file(dir: &Path) -> Option<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "spc"))
        .collect();
    files.sort();
    assert!(files.len() <= 1, "expected one pack file: {files:?}");
    files.pop()
}

#[test]
fn warm_analyze_is_byte_identical_to_cold() {
    let dir = scratch("warm-analyze");
    let fixture = write(&dir, "api.jir", FIXTURE);
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();

    let cold = spo(&["analyze", &fixture, "--cache-dir", cache]);
    assert!(cold.status.success(), "{cold:?}");
    assert!(pack_file(&PathBuf::from(cache)).is_some());

    let warm = spo(&["analyze", &fixture, "--cache-dir", cache]);
    assert_eq!(warm.status.code(), cold.status.code());
    assert_eq!(warm.stdout, cold.stdout, "warm stdout diverged from cold");
    assert_eq!(warm.stderr, cold.stderr);

    // And both match a run with the cache disabled entirely.
    let off = spo(&["analyze", &fixture, "--cache-dir", cache, "--no-cache"]);
    assert_eq!(off.stdout, cold.stdout);
}

#[test]
fn warm_export_is_byte_identical_and_edit_changes_only_its_root() {
    let dir = scratch("warm-export");
    let fixture = write(&dir, "api.jir", FIXTURE);
    let edited = write(&dir, "api-edited.jir", FIXTURE_EDITED);
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();

    let cold = spo(&["export", &fixture, "--name", "api", "--cache-dir", cache]);
    assert!(cold.status.success(), "{cold:?}");
    let warm = spo(&["export", &fixture, "--name", "api", "--cache-dir", cache]);
    assert_eq!(warm.stdout, cold.stdout);

    // A warm run over the edited program equals its own cold run: the
    // cache never leaks a stale policy into the edited root's entry.
    let edited_cold = spo(&["export", &edited, "--name", "api"]);
    let edited_warm = spo(&["export", &edited, "--name", "api", "--cache-dir", cache]);
    assert_eq!(edited_warm.stdout, edited_cold.stdout);
    let cold_text = String::from_utf8_lossy(&cold.stdout).to_string();
    let edited_text = String::from_utf8_lossy(&edited_warm.stdout).to_string();
    assert_ne!(cold_text, edited_text, "the edit must change the report");
    // The untouched roots' exported lines are identical across versions.
    for line in cold_text.lines() {
        if line.contains("api.Files") {
            assert!(edited_text.contains(line), "missing unchanged line {line}");
        }
    }
}

#[test]
fn warm_diff_is_byte_identical_to_cold() {
    let dir = scratch("warm-diff");
    let fixture = write(&dir, "api.jir", FIXTURE);
    let edited = write(&dir, "api-edited.jir", FIXTURE_EDITED);
    let cache = dir.join("cache");
    let cache = cache.to_str().unwrap();

    let run = || spo(&["diff", &fixture, "--vs", &edited, "--cache-dir", cache]);
    let cold = run();
    // The edited side dropped a check: findings, exit 1.
    assert_eq!(cold.status.code(), Some(1), "{cold:?}");
    let warm = run();
    assert_eq!(warm.status.code(), Some(1));
    assert_eq!(warm.stdout, cold.stdout);
    assert_eq!(warm.stderr, cold.stderr);
}

#[test]
fn corrupt_cache_degrades_to_cold_run_without_changing_results() {
    let dir = scratch("corrupt");
    let fixture = write(&dir, "api.jir", FIXTURE);
    let cache_dir = dir.join("cache");
    let cache = cache_dir.to_str().unwrap();

    let cold = spo(&["analyze", &fixture, "--cache-dir", cache]);
    assert!(cold.status.success(), "{cold:?}");
    let pack = pack_file(&cache_dir).expect("populated cache has a pack file");
    let good = std::fs::read(&pack).unwrap();
    assert!(good.starts_with(b"spo-cache "), "unexpected pack header");
    let mut bumped = good.clone();
    bumped[b"spo-cache ".len()] = b'9'; // version digit

    // Mangle the pack every way it can break: garbage, truncation
    // mid-entry, a format-version bump, and an empty file.
    let mangles: [&[u8]; 4] = [
        b"not a cache pack at all",
        &good[..good.len() / 2],
        &bumped,
        b"",
    ];
    for (i, bad) in mangles.iter().enumerate() {
        std::fs::write(&pack, bad).unwrap();
        let mangled = spo(&["analyze", &fixture, "--cache-dir", cache]);
        // Same report, same exit code — a broken cache is never a
        // degraded analysis, only a warning.
        assert_eq!(
            mangled.status.code(),
            cold.status.code(),
            "case {i}: {mangled:?}"
        );
        assert_eq!(mangled.stdout, cold.stdout, "case {i}");
        let stderr = String::from_utf8_lossy(&mangled.stderr);
        assert!(
            stderr.contains("cache"),
            "case {i}: no cache diagnostic: {stderr}"
        );

        // The run rewrote the pack from its cold results; a further warm
        // run is clean again.
        let healed = spo(&["analyze", &fixture, "--cache-dir", cache]);
        assert_eq!(healed.stdout, cold.stdout, "case {i}");
        assert_eq!(healed.stderr, cold.stderr, "case {i}: cache did not heal");
    }
}

#[test]
fn corrupt_cache_preserves_findings_exit_code_in_diff() {
    let dir = scratch("corrupt-diff");
    let fixture = write(&dir, "api.jir", FIXTURE);
    let edited = write(&dir, "api-edited.jir", FIXTURE_EDITED);
    let cache_dir = dir.join("cache");
    let cache = cache_dir.to_str().unwrap();

    let run = || spo(&["diff", &fixture, "--vs", &edited, "--cache-dir", cache]);
    let cold = run();
    assert_eq!(cold.status.code(), Some(1));
    let pack = pack_file(&cache_dir).expect("populated cache has a pack file");
    std::fs::write(pack, "garbage").unwrap();
    let mangled = run();
    // Findings exit (1), not degraded (2): the report is still exact.
    assert_eq!(mangled.status.code(), Some(1), "{mangled:?}");
    assert_eq!(mangled.stdout, cold.stdout);
    assert!(String::from_utf8_lossy(&mangled.stderr).contains("cache"));
}

#[test]
fn cache_subcommand_reports_and_clears() {
    let dir = scratch("subcommand");
    let fixture = write(&dir, "api.jir", FIXTURE);
    let cache_dir = dir.join("cache");
    let cache = cache_dir.to_str().unwrap();

    let out = spo(&["analyze", &fixture, "--cache-dir", cache]);
    assert!(out.status.success());

    let stats = spo(&["cache", "stats", "--cache-dir", cache]);
    assert!(stats.status.success(), "{stats:?}");
    let text = String::from_utf8_lossy(&stats.stdout).to_string();
    // "<dir>: N entries, M bytes" — one entry per analyzed root.
    let entries: usize = text
        .split(": ")
        .nth(1)
        .and_then(|t| t.split(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable stats line: {text}"));
    assert!(entries >= 3, "expected one entry per root: {text}");

    let clear = spo(&["cache", "clear", "--cache-dir", cache]);
    assert!(clear.status.success(), "{clear:?}");
    let text = String::from_utf8_lossy(&clear.stdout);
    assert!(
        text.contains(&format!("removed {entries} entries")),
        "{text}"
    );
    assert!(pack_file(&cache_dir).is_none());

    let stats = spo(&["cache", "stats", "--cache-dir", cache]);
    assert!(String::from_utf8_lossy(&stats.stdout).contains("0 entries"));
}

#[test]
fn cache_subcommand_requires_dir_and_known_action() {
    let missing = spo(&["cache", "stats"]);
    assert_eq!(missing.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&missing.stderr).contains("--cache-dir"));

    let dir = scratch("bad-action");
    let unknown = spo(&["cache", "frob", "--cache-dir", dir.to_str().unwrap()]);
    assert_eq!(unknown.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown action"));
}
