//! End-to-end tests of the flight-recorder tracing surface: `--trace-out`
//! on the one-shot commands, the determinism boundary (report bytes are
//! byte-identical with tracing on or off, warm or cold, at any `--jobs`),
//! `stats-validate --schema spo-trace/1`, and the daemon's per-request
//! trace capture (`trace_id` round-trip, `spo trace` retrieval).

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Output};

fn spo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_spo"))
        .args(args)
        .output()
        .expect("spo binary runs")
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spo-trace-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let path = temp_dir().join(name);
    std::fs::write(&path, content).unwrap();
    path
}

const RUNTIME: &str = r#"
class java.lang.SecurityManager {
  method public native void checkRead(java.lang.String file);
  method public native void checkWrite(java.lang.Object file);
}
class java.lang.System {
  field static java.lang.SecurityManager security;
  method public static java.lang.SecurityManager getSecurityManager() {
    local java.lang.SecurityManager sm;
    sm = java.lang.System.security;
    return sm;
  }
}
"#;

const API: &str = r#"
class api.F {
  method public void read(java.lang.String p) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto go;
    virtualinvoke sm.checkRead(p);
  go:
    staticinvoke api.F.read0(p);
    return;
  }
  method public void write(java.lang.String p) {
    local java.lang.SecurityManager sm;
    sm = staticinvoke java.lang.System.getSecurityManager();
    if sm == null goto go;
    virtualinvoke sm.checkWrite(p);
  go:
    staticinvoke api.F.write0(p);
    return;
  }
  method private static native void read0(java.lang.String p);
  method private static native void write0(java.lang.String p);
}
"#;

#[test]
fn traced_analyze_emits_valid_trace_and_identical_report() {
    let rt = write_temp("rt.jir", RUNTIME);
    let api = write_temp("api.jir", API);
    let trace_path = temp_dir().join("analyze.trace.json");
    let traced = spo(&[
        "analyze",
        rt.to_str().unwrap(),
        api.to_str().unwrap(),
        "--jobs",
        "4",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert!(traced.status.success(), "{traced:?}");
    let plain = spo(&[
        "analyze",
        rt.to_str().unwrap(),
        api.to_str().unwrap(),
        "--jobs",
        "2",
    ]);
    assert!(plain.status.success());
    assert_eq!(
        traced.stdout, plain.stdout,
        "report bytes are identical with tracing on or off, at any --jobs"
    );
    let doc = std::fs::read_to_string(&trace_path).unwrap();
    spo_obs::json::validate_trace(&doc).expect("capture conforms to spo-trace/1");
    assert!(doc.contains("/main"), "main lane present");
    assert!(doc.contains("/worker00"), "one lane per engine worker");
    assert!(doc.contains("\"fixpoint\""), "dataflow spans present");
    // The versioned validator is also reachable through the CLI.
    let validated = spo(&[
        "stats-validate",
        "--schema",
        "spo-trace/1",
        trace_path.to_str().unwrap(),
    ]);
    assert!(validated.status.success(), "{validated:?}");
    // A trace document is not a stats snapshot; the default schema rejects it.
    let cross = spo(&["stats-validate", trace_path.to_str().unwrap()]);
    assert_eq!(cross.status.code(), Some(3));
}

#[test]
fn traced_diff_and_check_write_captures_without_touching_stdout() {
    let rt = write_temp("rt2.jir", RUNTIME);
    let api = write_temp("api2.jir", API);
    let diff_trace = temp_dir().join("diff.trace.json");
    let traced = spo(&[
        "diff",
        rt.to_str().unwrap(),
        api.to_str().unwrap(),
        "--vs",
        rt.to_str().unwrap(),
        api.to_str().unwrap(),
        "--trace-out",
        diff_trace.to_str().unwrap(),
    ]);
    let plain = spo(&[
        "diff",
        rt.to_str().unwrap(),
        api.to_str().unwrap(),
        "--vs",
        rt.to_str().unwrap(),
        api.to_str().unwrap(),
    ]);
    assert_eq!(traced.status.code(), plain.status.code());
    assert_eq!(traced.stdout, plain.stdout, "diff bytes undisturbed");
    let doc = std::fs::read_to_string(&diff_trace).unwrap();
    spo_obs::json::validate_trace(&doc).unwrap();
    assert!(doc.contains("left/"), "left analysis lanes");
    assert!(doc.contains("right/"), "right analysis lanes");

    let check_trace = temp_dir().join("check.trace.json");
    let checked = spo(&[
        "check",
        rt.to_str().unwrap(),
        api.to_str().unwrap(),
        "--trace-out",
        check_trace.to_str().unwrap(),
    ]);
    assert!(checked.status.success(), "{checked:?}");
    let doc = std::fs::read_to_string(&check_trace).unwrap();
    spo_obs::json::validate_trace(&doc).unwrap();
    assert!(
        doc.contains("\"call-graph\""),
        "check phases on the timeline"
    );
}

#[test]
fn daemon_round_trips_trace_ids_and_serves_captures() {
    let rt = write_temp("rt3.jir", RUNTIME);
    let api = write_temp("api3.jir", API);
    let socket = temp_dir().join("traced.sock");
    let _ = std::fs::remove_file(&socket);
    let load = format!("lib={},{}", rt.to_str().unwrap(), api.to_str().unwrap());
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_spo"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--no-cache",
            "--load",
            &load,
        ])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon starts");
    while !socket.exists() {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    let mut rpc = |line: &str| -> String {
        writeln!(stream, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_owned()
    };
    let traced = rpc(
        r#"{"spo-rpc":1,"id":1,"method":"analyze","params":{"name":"lib"},"trace_id":"e2e-1"}"#,
    );
    assert!(
        traced.contains(r#""status":"ok","trace_id":"e2e-1""#),
        "envelope echoes the client's trace id: {traced}"
    );
    let untraced = rpc(r#"{"spo-rpc":1,"id":2,"method":"analyze","params":{"name":"lib"}}"#);
    assert!(
        !untraced.contains("trace_id"),
        "untraced responses stay byte-compatible: {untraced}"
    );
    drop(stream);
    drop(reader);
    // Retrieval through the dedicated subcommand, written to a file.
    let out_path = temp_dir().join("fetched.trace.json");
    let fetched = spo(&[
        "trace",
        "--socket",
        socket.to_str().unwrap(),
        "--trace-id",
        "e2e-1",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(fetched.status.success(), "{fetched:?}");
    let doc = std::fs::read_to_string(&out_path).unwrap();
    spo_obs::json::validate_trace(&doc).expect("fetched capture conforms to spo-trace/1");
    assert!(doc.contains("queue.wait"), "admission latency captured");
    // Unknown ids fail typed, through the same subcommand.
    let missing = spo(&[
        "trace",
        "--socket",
        socket.to_str().unwrap(),
        "--trace-id",
        "nope",
    ]);
    assert_eq!(missing.status.code(), Some(3));
    let bye = spo(&[
        "rpc",
        "--socket",
        socket.to_str().unwrap(),
        r#"{"spo-rpc":1,"id":9,"method":"shutdown"}"#,
    ]);
    assert!(bye.status.success(), "{bye:?}");
    let status = daemon.wait().expect("daemon drains");
    assert!(status.success());
}
