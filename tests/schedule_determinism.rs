//! Property: cone-batched scheduling and write-behind publication (the
//! engine defaults) keep the analysis schedule-independent at scale.
//!
//! Report bytes and the deterministic `spo-stats/1` sections must be
//! identical across `--jobs 1/2/8`, with a cold cache and with a warm
//! one, on the scale-10 corpus (depth-21 utility chains, ~59k jdk entry
//! points). Tier-1 runs a strided sample of the roots — enough cones to
//! exercise batching, stealing, and batched flushes, small enough for the
//! debug-build test budget; `tests/full_scale.rs` covers the full corpus
//! at scale 1.

use spo_cache::PolicyCache;
use spo_core::{render_analysis, AnalysisOptions};
use spo_corpus::{generate, CorpusConfig, Lib};
use spo_engine::AnalysisEngine;
use spo_obs::Recorder;
use std::sync::Arc;

const JOBS: [usize; 3] = [1, 2, 8];

/// Every Nth scale-10 entry point (~235 roots at stride 250).
const SAMPLE_STRIDE: usize = 250;

struct Run {
    report: String,
    deterministic: String,
    batches_formed: u64,
    writeback_flushes: u64,
}

fn run_sampled(
    program: &spo_jir::Program,
    roots: &[spo_jir::MethodId],
    jobs: usize,
    cache: Option<&std::path::Path>,
) -> Run {
    let rec = Recorder::new();
    let mut engine = AnalysisEngine::new(jobs).with_recorder(rec.clone());
    if let Some(dir) = cache {
        engine = engine.with_cache(Arc::new(PolicyCache::open(dir).expect("cache directory")));
    }
    let (policies, stats) =
        engine.analyze_entries(program, "jdk", roots, AnalysisOptions::default());
    Run {
        report: render_analysis(&policies),
        deterministic: rec.snapshot().deterministic_json(),
        batches_formed: stats.batches_formed,
        writeback_flushes: stats.writeback_flushes,
    }
}

#[test]
fn scale10_sample_identical_across_jobs_cold_and_warm() {
    let corpus = generate(&CorpusConfig {
        scale: 10.0,
        ..Default::default()
    });
    let program = corpus.program(Lib::Jdk);
    let all = spo_resolve::entry_points(program);
    assert!(
        all.len() > 10_000,
        "scale-10 corpus must reach tens of thousands of entry points, got {}",
        all.len()
    );
    let roots: Vec<spo_jir::MethodId> = all.iter().copied().step_by(SAMPLE_STRIDE).collect();

    // Cold cache: jobs=1 is the baseline; every other worker count must
    // produce the same report bytes and deterministic counter sections.
    let cold = run_sampled(program, &roots, 1, None);
    assert!(!cold.report.is_empty());
    for jobs in &JOBS[1..] {
        let run = run_sampled(program, &roots, *jobs, None);
        assert_eq!(
            run.report, cold.report,
            "cold report diverged at jobs={jobs}"
        );
        assert_eq!(
            run.deterministic, cold.deterministic,
            "cold counters diverged at jobs={jobs}"
        );
        // The configuration under test is actually on.
        assert!(run.batches_formed > 0, "jobs={jobs}: no batches formed");
        assert!(run.writeback_flushes > 0, "jobs={jobs}: no batched flushes");
    }

    // Warm cache: populate once serially, then replay every worker count
    // against the same populated cache.
    let dir = std::env::temp_dir().join(format!("spo-sched-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");
    let _ = run_sampled(program, &roots, 1, Some(&dir));
    let warm = run_sampled(program, &roots, 1, Some(&dir));
    assert_eq!(
        warm.report, cold.report,
        "warm report must match the cold analysis"
    );
    for jobs in &JOBS[1..] {
        let run = run_sampled(program, &roots, *jobs, Some(&dir));
        assert_eq!(
            run.report, cold.report,
            "warm report diverged at jobs={jobs}"
        );
        assert_eq!(
            run.deterministic, warm.deterministic,
            "warm counters diverged at jobs={jobs}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
