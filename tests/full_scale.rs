//! Full-scale (paper-sized) validation, ignored by default because it
//! takes seconds rather than milliseconds. Run with:
//!
//! ```text
//! cargo test --release --test full_scale -- --ignored
//! ```

use security_policy_oracle::compare_implementations;
use spo_core::AnalysisOptions;
use spo_corpus::{generate, BugCategory, CorpusConfig, Lib};

#[test]
#[ignore = "paper-sized corpus; run explicitly with --ignored"]
fn table_3_exact_cells_at_scale_one() {
    let corpus = generate(&CorpusConfig::default());
    for (a, b) in [
        (Lib::Classpath, Lib::Harmony),
        (Lib::Jdk, Lib::Harmony),
        (Lib::Jdk, Lib::Classpath),
    ] {
        let report = compare_implementations(
            corpus.program(a),
            a.name(),
            corpus.program(b),
            b.name(),
            AnalysisOptions::default(),
        );
        let expected = corpus.catalog.expected(a, b);
        let mut vulns_a = (0, 0);
        let mut vulns_b = (0, 0);
        let mut interop = (0, 0);
        let mut fps = (0, 0);
        for g in &report.groups {
            let bug = corpus
                .catalog
                .classify(g)
                .unwrap_or_else(|| panic!("{a} vs {b}: unplanned report {}", g.root_key));
            let m = g.manifestation_count();
            let slot = match bug.category {
                BugCategory::Vulnerability if bug.buggy_lib == a => &mut vulns_a,
                BugCategory::Vulnerability => &mut vulns_b,
                BugCategory::Interop => &mut interop,
                BugCategory::FalsePositive => &mut fps,
                BugCategory::IcpOnly => panic!("ICP-only bug reported with ICP on"),
            };
            slot.0 += 1;
            slot.1 += m;
        }
        if let Some(want) = expected.vulns.get(&a) {
            assert_eq!(vulns_a, *want, "{a} vs {b}: vulns in {a}");
        }
        if let Some(want) = expected.vulns.get(&b) {
            assert_eq!(vulns_b, *want, "{a} vs {b}: vulns in {b}");
        }
        assert_eq!(interop, expected.interop, "{a} vs {b}: interop");
        assert_eq!(fps, expected.false_positives, "{a} vs {b}: FPs");
    }
}

#[test]
#[ignore = "paper-sized corpus; run explicitly with --ignored"]
fn library_shapes_at_scale_one() {
    let corpus = generate(&CorpusConfig::default());
    let mut entry_counts = Vec::new();
    for lib in Lib::ALL {
        let analyzer = spo_core::Analyzer::new(corpus.program(lib), AnalysisOptions::default());
        let policies = analyzer.analyze_library(lib.name());
        entry_counts.push((lib, policies.stats.entry_points));
        // may > must counting shape, as in Table 1.
        assert!(
            policies.may_policy_count() >= policies.must_policy_count(),
            "{lib}"
        );
        // A small fraction of entries carries checks.
        let frac = policies.entries_with_checks() as f64 / policies.stats.entry_points as f64;
        assert!(frac < 0.25, "{lib}: {frac}");
    }
    // jdk > harmony > classpath ordering of entry points.
    assert!(entry_counts[0].1 > entry_counts[1].1);
    assert!(entry_counts[1].1 > entry_counts[2].1);
}

#[test]
#[ignore = "paper-sized corpus; run explicitly with --ignored"]
fn memoization_speedup_shape_at_scale_one() {
    use spo_core::{Analyzer, MemoScope};
    let corpus = generate(&CorpusConfig::default());
    let p = corpus.program(Lib::Jdk);
    let time = |memo| {
        let lib = Analyzer::new(
            p,
            AnalysisOptions {
                memo,
                ..Default::default()
            },
        )
        .analyze_library("jdk");
        (
            lib.stats.may_nanos + lib.stats.must_nanos,
            lib.stats.frames_analyzed,
        )
    };
    let (none_t, none_f) = time(MemoScope::None);
    let (per_t, per_f) = time(MemoScope::PerEntry);
    let (global_t, global_f) = time(MemoScope::Global);
    // Frame counts are deterministic; times should follow on any sane box.
    assert!(
        none_f > per_f && per_f > global_f,
        "{none_f} / {per_f} / {global_f}"
    );
    assert!(none_t > global_t, "{none_t} vs {global_t}");
    assert!(none_t > per_t, "{none_t} vs {per_t}");
}
